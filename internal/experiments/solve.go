// Solver-throughput benchmark behind `repro -exp solve`: the numbers
// BENCH_solve.json pins. The paper's model construction is dominated
// by repeated SAT solving over the segmented hypothesis (§III), so
// conflicts per second is the solver-side figure of merit the perf
// work optimises — first on a pure CDCL workload (a pigeonhole proof,
// every run an identical full UNSAT refutation), then inside real
// learning runs where the same solver executes the paper's
// solve/refine loop.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/sat"
)

// SolveRow is one solver workload's measurement.
type SolveRow struct {
	Name         string  `json:"name"`
	Status       string  `json:"status"`
	WallMS       float64 `json:"wall_ms"`
	Conflicts    int64   `json:"conflicts"`
	Propagations int64   `json:"propagations"`
	Learned      int64   `json:"learned"`
	ConflictsPS  float64 `json:"conflicts_per_sec"`
	PropsPS      float64 `json:"propagations_per_sec"`
	// States is the learned model size for learning workloads, 0 for
	// raw CNF workloads.
	States int `json:"states,omitempty"`
}

// solvePigeonhole builds the PHP(pigeons, holes) CNF: each pigeon in
// some hole, no two pigeons sharing one. With pigeons = holes+1 it is
// unsatisfiable with an exponential resolution proof — a deterministic,
// conflict-dense CDCL workload.
func solvePigeonhole(pigeons, holes int) *sat.Solver {
	s := sat.New()
	va := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		c := make([]sat.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = sat.Pos(va(p, h))
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(sat.Neg(va(p1, h)), sat.Neg(va(p2, h)))
			}
		}
	}
	return s
}

// RunSolve measures solver throughput on the pinned workloads: the
// PHP(9,8) refutation solved cold and with an inprocessing pass, then
// the full learn loop on the Counter and Serial I/O cases (solver
// effort there includes encoding and canonical extraction probing, as
// it does in production). Results are deterministic in everything but
// wall time.
func RunSolve() ([]SolveRow, error) {
	var rows []SolveRow
	cnf := func(name string, prep func(*sat.Solver)) {
		s := solvePigeonhole(9, 8)
		if prep != nil {
			prep(s)
		}
		t0 := time.Now()
		st := s.Solve()
		wall := time.Since(t0)
		rows = append(rows, SolveRow{
			Name:         name,
			Status:       st.String(),
			WallMS:       float64(wall.Nanoseconds()) / 1e6,
			Conflicts:    s.Stats.Conflicts,
			Propagations: s.Stats.Propagations,
			Learned:      s.Stats.Learned,
			ConflictsPS:  rate(s.Stats.Conflicts, wall),
			PropsPS:      rate(s.Stats.Propagations, wall),
		})
	}
	cnf("php-9-8", nil)
	cnf("php-9-8-inprocessed", func(s *sat.Solver) { s.Simplify() })

	for _, lc := range []struct{ name, short string }{
		{"Counter", "counter"},
		{"Serial I/O Port", "serial"},
	} {
		c, err := CaseByName(lc.name)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		m, err := LearnCase(c, 0)
		if err != nil {
			return nil, fmt.Errorf("solve bench %s: %w", lc.name, err)
		}
		wall := time.Since(t0)
		ls := m.LearnStats
		rows = append(rows, SolveRow{
			Name:         "learn-" + lc.short,
			Status:       "SAT",
			WallMS:       float64(wall.Nanoseconds()) / 1e6,
			Conflicts:    ls.SATConflicts,
			Propagations: ls.SATPropagations,
			Learned:      ls.SATLearned,
			ConflictsPS:  rate(ls.SATConflicts, wall),
			PropsPS:      rate(ls.SATPropagations, wall),
			States:       m.States,
		})
	}
	return rows, nil
}

func rate(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// WriteSolveBench writes the rows as the BENCH_solve.json document.
func WriteSolveBench(w io.Writer, rows []SolveRow) error {
	doc := struct {
		Benchmark   string     `json:"benchmark"`
		Description string     `json:"description"`
		GOOS        string     `json:"goos"`
		GOARCH      string     `json:"goarch"`
		Results     []SolveRow `json:"results"`
	}{
		Benchmark:   "solve",
		Description: "SAT solver throughput: conflicts/sec on a PHP(9,8) refutation (cold and after an inprocessing pass) and inside full learning runs (repro -exp solve -solve-out BENCH_solve.json)",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Results:     rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
