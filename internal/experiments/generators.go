package experiments

import (
	"errors"
	"strings"

	"repro/internal/systems/counter"
	"repro/internal/systems/integrator"
	"repro/internal/systems/rtlinux"
	"repro/internal/systems/serial"
	"repro/internal/systems/usbxhci"
	"repro/internal/trace"
)

// errorsIs wraps errors.Is for experiments.go.
func errorsIs(err, target error) bool { return errors.Is(err, target) }

// GenUSBSlot produces the USB Slot benchmark trace (39 slot command
// events).
func GenUSBSlot() (*trace.Trace, error) {
	return usbxhci.DefaultSlotWorkload().Run()
}

// GenUSBAttach produces the USB Attach benchmark trace (259 interface
// events).
func GenUSBAttach() (*trace.Trace, error) {
	return usbxhci.DefaultAttachWorkload().Run()
}

// GenCounter produces the Counter benchmark trace (447 observations,
// threshold 128).
func GenCounter() (*trace.Trace, error) {
	return counter.DefaultConfig().Run()
}

// GenSerial produces the Serial I/O Port benchmark trace (2076
// observations of event and queue length).
func GenSerial() (*trace.Trace, error) {
	return serial.DefaultWorkload().Run()
}

// GenRTLinux produces the Linux Kernel benchmark trace (20165
// scheduler events of the thread under analysis), by simulating the
// system, rendering the full ftrace log, and parsing it back — the
// same path the paper's tooling takes through real ftrace output.
func GenRTLinux() (*trace.Trace, error) {
	sim, err := rtlinux.New(rtlinux.DefaultConfig())
	if err != nil {
		return nil, err
	}
	direct, err := sim.Run()
	if err != nil {
		return nil, err
	}
	parsed, err := trace.ParseFtrace(strings.NewReader(sim.FtraceLog()))
	if err != nil {
		return nil, err
	}
	viaFtrace := trace.FtraceToTrace(parsed, sim.MonitoredTask(), nil)
	// The direct trace is truncated to the configured event count;
	// slice the parsed view to the same length.
	return viaFtrace.Slice(0, direct.Len()), nil
}

// GenIntegrator produces the Integrator benchmark trace (32768
// observations).
func GenIntegrator() (*trace.Trace, error) {
	return integrator.DefaultConfig().Run()
}

// GenIntegratorLen produces an integrator trace of the given length
// (the Fig 7 sweep).
func GenIntegratorLen(n int) (*trace.Trace, error) {
	cfg := integrator.DefaultConfig()
	cfg.Observations = n
	return cfg.Run()
}
