package runlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func testRecord(tool string, wallMS float64, at time.Time) *Record {
	return &Record{
		Version:   RecordVersion,
		Tool:      tool,
		CreatedAt: at.UTC().Format(time.RFC3339Nano),
		Config:    map[string]any{"steps": 1000, "workers": 4},
		Inputs:    []pipeline.InputDigest{{Path: "trace.csv", SHA256: "abc", Bytes: 10}},
		WallMS:    wallMS,
		Verdict:   VerdictOK,
		Counters:  map[string]int64{"solver_calls_total": 7},
	}
}

func TestStorePutListGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var digests []string
	for i := 0; i < 3; i++ {
		d, err := s.Put(testRecord("t2m", float64(100+i), base.Add(time.Duration(i)*time.Minute)))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	// Idempotent: same record, same digest, no new file.
	d, err := s.Put(testRecord("t2m", 100, base))
	if err != nil {
		t.Fatal(err)
	}
	if d != digests[0] {
		t.Fatalf("re-put digest %s != %s", d, digests[0])
	}

	entries, corrupt, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 || len(entries) != 3 {
		t.Fatalf("List = %d entries, %d corrupt; want 3, 0", len(entries), corrupt)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Record.created().After(entries[i].Record.created()) {
			t.Fatal("entries not sorted by created_at")
		}
	}
	if entries[0].Record.WallMS != 100 || entries[2].Record.WallMS != 102 {
		t.Fatalf("order: %v, %v", entries[0].Record.WallMS, entries[2].Record.WallMS)
	}

	got, err := s.Get(digests[1][:8])
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != digests[1] || got.Record.WallMS != 101 {
		t.Fatalf("Get = %+v", got)
	}
	if _, err := s.Get("ffffffffffff"); err == nil {
		t.Fatal("Get of absent prefix succeeded")
	}
	if _, err := s.Get(""); err == nil {
		t.Fatal("Get of ambiguous prefix succeeded")
	}
	if s.Dir() == "" || s.ProfileDir() == "" {
		t.Fatal("empty dirs")
	}
}

func TestStoreSkipsCorruptRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	good, err := s.Put(testRecord("t2m", 100, base))
	if err != nil {
		t.Fatal(err)
	}

	recDir := filepath.Join(s.Dir(), "records")
	// 1: content that no longer matches its address (bit rot).
	if err := os.WriteFile(filepath.Join(recDir, good[:2], "0"+good[1:]+".json"), []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// 2: valid digest name but invalid JSON.
	junk := []byte("not json at all")
	sum := sha256.Sum256(junk)
	jd := hex.EncodeToString(sum[:])
	os.MkdirAll(filepath.Join(recDir, jd[:2]), 0o755)
	if err := os.WriteFile(filepath.Join(recDir, jd[:2], jd+".json"), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	// 3: schema-invalid record with a correct digest.
	bad, _ := json.Marshal(&Record{Version: 99, Tool: "x", CreatedAt: "2026-01-01T00:00:00Z"})
	sum = sha256.Sum256(bad)
	bd := hex.EncodeToString(sum[:])
	os.MkdirAll(filepath.Join(recDir, bd[:2]), 0o755)
	if err := os.WriteFile(filepath.Join(recDir, bd[:2], bd+".json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// 4: non-record file, ignored silently.
	os.WriteFile(filepath.Join(recDir, good[:2], "README"), []byte("hi"), 0o644)

	entries, corrupt, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Digest != good {
		t.Fatalf("List kept %d entries, want only the good one", len(entries))
	}
	if corrupt != 3 {
		t.Fatalf("corrupt = %d, want 3", corrupt)
	}
}

func TestRecordValidate(t *testing.T) {
	base := time.Now()
	cases := []struct {
		mut  func(*Record)
		want bool
	}{
		{func(r *Record) {}, true},
		{func(r *Record) { r.Version = 2 }, false},
		{func(r *Record) { r.Tool = "" }, false},
		{func(r *Record) { r.CreatedAt = "yesterday" }, false},
		{func(r *Record) { r.WallMS = -1 }, false},
	}
	for i, c := range cases {
		r := testRecord("t2m", 10, base)
		c.mut(r)
		if got := r.Validate() == nil; got != c.want {
			t.Errorf("case %d: valid=%v, want %v", i, got, c.want)
		}
	}
	var rn *Record
	if rn.Validate() == nil {
		t.Error("nil record validates")
	}
}

func TestConfigKeyGroupsWorkloads(t *testing.T) {
	base := time.Now()
	a1 := testRecord("t2m", 100, base)
	a2 := testRecord("t2m", 200, base.Add(time.Hour)) // same workload, different measurement
	b := testRecord("t2m", 100, base)
	b.Config["workers"] = 8 // different workload
	c := testRecord("monitor", 100, base)

	if a1.ConfigKey() != a2.ConfigKey() {
		t.Error("measurement fields leaked into ConfigKey")
	}
	if a1.ConfigKey() == b.ConfigKey() {
		t.Error("config change did not change ConfigKey")
	}
	if a1.ConfigKey() == c.ConfigKey() {
		t.Error("tool change did not change ConfigKey")
	}
	d := testRecord("t2m", 100, base)
	d.Inputs[0].SHA256 = "different"
	if a1.ConfigKey() == d.ConfigKey() {
		t.Error("input digest change did not change ConfigKey")
	}
}

func TestRecordName(t *testing.T) {
	r := testRecord("t2m", 1, time.Now())
	if got := r.Name(); got != "t2m trace.csv" {
		t.Errorf("Name = %q", got)
	}
	r.Inputs = nil
	if got := r.Name(); got != "t2m" {
		t.Errorf("Name = %q", got)
	}
	r.Config["bench"] = "php-9-8"
	if got := r.Name(); got != "php-9-8" {
		t.Errorf("Name = %q", got)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if got := MAD([]float64{1, 2, 3, 100}, 2.5); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil, 0); got != 0 {
		t.Errorf("MAD(nil) = %v", got)
	}
}

// benchEntries builds an archive history: for each wall time in walls,
// one record of the same workload, one minute apart.
func benchEntries(t *testing.T, name string, walls ...float64) []Entry {
	t.Helper()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var out []Entry
	for i, w := range walls {
		r := &Record{
			Version:   RecordVersion,
			Tool:      "bench",
			CreatedAt: base.Add(time.Duration(i) * time.Minute).UTC().Format(time.RFC3339Nano),
			Config:    map[string]any{"bench": name},
			WallMS:    w,
		}
		out = append(out, Entry{Digest: fmt.Sprintf("%s-%d", name, i), Record: r})
	}
	return out
}

func TestRegressFlagsInjectedRegression(t *testing.T) {
	// Quiet baseline at ~100ms, candidate +30%: must be flagged at the
	// default 25% threshold.
	entries := benchEntries(t, "ingest", 100, 101, 99, 100, 102, 130)
	res := Regress(entries, RegressOptions{})
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	r := res[0]
	if r.Skipped || !r.Regressed {
		t.Fatalf("injected 30%% regression not flagged: %+v", r)
	}
	if r.BaselineN != 5 || r.BaselineMedianMS != 100 {
		t.Errorf("baseline = n%d median %v", r.BaselineN, r.BaselineMedianMS)
	}

	// Same history, candidate within threshold: passes.
	res = Regress(benchEntries(t, "ingest", 100, 101, 99, 100, 102, 110), RegressOptions{})
	if res[0].Regressed {
		t.Fatalf("10%% slowdown flagged at 25%% threshold: %+v", res[0])
	}
}

func TestRegressDeterministic(t *testing.T) {
	entries := append(benchEntries(t, "b-noisy", 100, 300, 100, 280, 120, 310),
		benchEntries(t, "a-quiet", 50, 50, 50, 80)...)
	r1 := Regress(entries, RegressOptions{})
	r2 := Regress(entries, RegressOptions{})
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("Regress is not deterministic over the same entries")
	}
	if len(r1) != 2 || r1[0].Name != "a-quiet" || r1[1].Name != "b-noisy" {
		t.Fatalf("results not sorted by name: %+v", r1)
	}
}

func TestRegressMADAbsorbsNoisyBaseline(t *testing.T) {
	// History swings between ~100 and ~300: median 200, MAD 100. A
	// 310ms candidate is within the historical envelope
	// (limit = 200 + 4·1.4826·100 ≈ 793) even though it is +55% over
	// the median.
	entries := benchEntries(t, "noisy", 100, 300, 100, 300, 100, 300, 310)
	res := Regress(entries, RegressOptions{})
	if res[0].Regressed {
		t.Fatalf("noisy-baseline candidate flagged: %+v", res[0])
	}
	// But a candidate beyond even the MAD envelope is flagged.
	entries = benchEntries(t, "noisy", 100, 300, 100, 300, 100, 300, 900)
	res = Regress(entries, RegressOptions{})
	if !res[0].Regressed {
		t.Fatalf("beyond-envelope candidate not flagged: %+v", res[0])
	}
}

func TestRegressSkipsAndWindow(t *testing.T) {
	// Single run: no baseline.
	res := Regress(benchEntries(t, "solo", 100), RegressOptions{})
	if !res[0].Skipped || res[0].Reason == "" {
		t.Fatalf("single-run workload not skipped: %+v", res[0])
	}
	// Sub-min-wall baseline (history long enough to be judged):
	// skipped, not judged.
	res = Regress(benchEntries(t, "tiny", 1, 1, 1, 2), RegressOptions{MinWallMS: 50})
	if !res[0].Skipped || !strings.Contains(res[0].Reason, "min-wall") {
		t.Fatalf("sub-min-wall workload not skipped: %+v", res[0])
	}
	// Window: only the last N baselines count. Old slow era (1000ms)
	// outside the window must not mask a regression against the recent
	// fast era (100ms).
	walls := []float64{1000, 1000, 1000, 1000, 100, 101, 99, 100, 140}
	res = Regress(benchEntries(t, "windowed", walls...), RegressOptions{Window: 4})
	if !res[0].Regressed {
		t.Fatalf("windowed regression not flagged: %+v", res[0])
	}
	if res[0].BaselineN != 4 {
		t.Fatalf("window not applied: baseline n = %d", res[0].BaselineN)
	}
}

// TestRegressInsufficientHistory is the regression test for the
// degenerate-MAD bug: with fewer than 3 baseline runs the envelope
// collapses (1 run ⇒ median == the single measurement and MAD 0, so
// any jitter "regresses"; 2 runs ⇒ the spread between them is pure
// jitter). Short histories must be skipped with an "insufficient
// history" verdict, never judged.
func TestRegressInsufficientHistory(t *testing.T) {
	cases := []struct {
		name     string
		walls    []float64 // last entry is the candidate
		baseline int
	}{
		{"zero-baseline", []float64{130}, 0},
		{"one-baseline", []float64{100, 130}, 1},
		{"two-baseline", []float64{100, 100, 130}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Regress(benchEntries(t, tc.name, tc.walls...), RegressOptions{})
			if len(res) != 1 {
				t.Fatalf("got %d results", len(res))
			}
			r := res[0]
			if !r.Skipped || r.Regressed {
				t.Fatalf("%d-run baseline judged instead of skipped: %+v", tc.baseline, r)
			}
			if !strings.Contains(r.Reason, "insufficient history") {
				t.Fatalf("reason = %q, want insufficient history", r.Reason)
			}
			if r.BaselineN != tc.baseline {
				t.Fatalf("BaselineN = %d, want %d", r.BaselineN, tc.baseline)
			}
		})
	}

	// The exact boundary: 3 baseline runs are judged (and a +30%
	// candidate flagged); MinBaseline 1 opts back into judging a
	// single-run history.
	res := Regress(benchEntries(t, "at-min", 100, 101, 99, 130), RegressOptions{})
	if res[0].Skipped || !res[0].Regressed {
		t.Fatalf("3-run baseline not judged: %+v", res[0])
	}
	res = Regress(benchEntries(t, "optin", 100, 130), RegressOptions{MinBaseline: 1})
	if res[0].Skipped || !res[0].Regressed {
		t.Fatalf("MinBaseline=1 single-run baseline not judged: %+v", res[0])
	}
}

func TestCompareDeltas(t *testing.T) {
	a := testRecord("t2m", 100, time.Now())
	b := testRecord("t2m", 150, time.Now())
	b.Counters["solver_calls_total"] = 14
	b.Metrics = map[string]float64{"peak_heap_mb": 12}
	a.Model = &pipeline.ModelManifest{States: 4, Transitions: 9}
	b.Model = &pipeline.ModelManifest{States: 5, Transitions: 9}
	ds := Compare(a, b)
	byKey := map[string]Delta{}
	for _, d := range ds {
		byKey[d.Key] = d
	}
	if d := byKey["wall_ms"]; d.A != 100 || d.B != 150 || d.Pct != 50 {
		t.Errorf("wall_ms delta = %+v", d)
	}
	if d := byKey["counter:solver_calls_total"]; d.A != 7 || d.B != 14 || d.Pct != 100 {
		t.Errorf("counter delta = %+v", d)
	}
	if d := byKey["metric:peak_heap_mb"]; d.A != 0 || d.B != 12 || d.Pct != 0 {
		t.Errorf("one-sided metric delta = %+v", d)
	}
	if d := byKey["model:states"]; d.A != 4 || d.B != 5 {
		t.Errorf("model delta = %+v", d)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Key >= ds[i].Key {
			t.Fatal("deltas not sorted")
		}
	}
}

func TestImportBenchJSON(t *testing.T) {
	doc := `{"benchmark":"solve","results":[
		{"name":"php-9-8","status":"UNSAT","wall_ms":486.9,"conflicts":27397},
		{"name":"BenchmarkIngestBatch100k","ns_per_op":93406960,"peak_heap_mb":18.44}
	]}`
	stamp := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	recs, err := ImportBench([]byte(doc), stamp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name() != "php-9-8" || recs[0].WallMS != 486.9 {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[0].Metrics["conflicts"] != 27397 {
		t.Errorf("rec0 metrics = %v", recs[0].Metrics)
	}
	if recs[1].WallMS != 93406960.0/1e6 {
		t.Errorf("ns_per_op row wall = %v", recs[1].WallMS)
	}
	if !recs[0].created().Before(recs[1].created()) {
		t.Error("row order not preserved in stamps")
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Errorf("imported record invalid: %v", err)
		}
	}
}

func TestImportBenchText(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkIngestBatch100k-8   	       3	  93406960 ns/op	26987066 B/op	  281051 allocs/op
BenchmarkIngestStreaming100k-8 	       3	  25292942 ns/op
PASS
`
	recs, err := ImportBench([]byte(out), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// The -8 procs suffix is stripped so text and JSON rows share a
	// ConfigKey group.
	if recs[0].Name() != "BenchmarkIngestBatch100k" {
		t.Errorf("rec0 name = %q", recs[0].Name())
	}
	if recs[0].WallMS != 93406960.0/1e6 {
		t.Errorf("rec0 wall = %v", recs[0].WallMS)
	}
	jsonRow, err := ImportBench([]byte(`{"benchmark":"ingest","results":[{"name":"BenchmarkIngestBatch100k","ns_per_op":93406960}]}`), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if jsonRow[0].ConfigKey() != recs[0].ConfigKey() {
		t.Error("text and JSON rows of the same bench landed in different groups")
	}
}

func TestImportBenchErrors(t *testing.T) {
	for _, bad := range []string{"", "no bench lines here\n", `{"benchmark":"x","results":[]}`, `{"benchmark":"x","results":[{"status":"ok"}]}`, `{"benchmark":"x","results":[{"name":"a"}]}`, `{broken`} {
		if _, err := ImportBench([]byte(bad), time.Now()); err == nil {
			t.Errorf("ImportBench(%.30q) succeeded", bad)
		}
	}
}

// TestRegressOnRealBenchTrajectory runs the full import → archive →
// regress flow over the repo's checked-in BENCH files — the exact CI
// gate path. A fresh import identical to the baseline must pass; a
// +30% candidate on one row must fail.
func TestRegressOnRealBenchTrajectory(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putAll := func(stamp time.Time, mutate func(*Record)) {
		t.Helper()
		for _, f := range []string{"../../BENCH_ingest.json", "../../BENCH_solve.json"} {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Skipf("bench file %s unavailable: %v", f, err)
			}
			recs, err := ImportBench(data, stamp)
			if err != nil {
				t.Fatalf("import %s: %v", f, err)
			}
			for _, r := range recs {
				if mutate != nil {
					mutate(r)
				}
				if _, err := s.Put(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	putAll(base, nil)                     // archived baseline
	putAll(base.Add(time.Hour), nil)      // identical fresh run
	entries, corrupt, err := s.List()
	if err != nil || corrupt != 0 {
		t.Fatalf("List: %v, %d corrupt", err, corrupt)
	}
	// MinBaseline 1 mirrors the CI gate's -min-runs 1: the archived
	// baseline is a single checked-in measurement per workload.
	opts := RegressOptions{Threshold: 0.25, MinWallMS: 50, MinBaseline: 1}
	res := Regress(entries, opts)
	for _, r := range res {
		if r.Regressed {
			t.Errorf("identical re-run flagged: %+v", r)
		}
	}
	if !reflect.DeepEqual(res, Regress(entries, opts)) {
		t.Fatal("regress over real trajectory not deterministic")
	}

	// Inject +30% wall on every row of a third run: every non-skipped
	// workload must flag.
	putAll(base.Add(2*time.Hour), func(r *Record) { r.WallMS *= 1.30 })
	entries, _, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	var flagged, judged int
	for _, r := range Regress(entries, opts) {
		if r.Skipped {
			continue
		}
		judged++
		if r.Regressed {
			flagged++
		}
	}
	if judged == 0 {
		t.Fatal("no workloads judged on real trajectory")
	}
	if flagged != judged {
		t.Fatalf("injected +30%%: flagged %d of %d judged workloads", flagged, judged)
	}
}
