// Benchmark import: converts the repo's two benchmark artifact shapes
// — the BENCH_*.json documents written by `repro -exp ... -*-out` and
// the text `go test -bench` emits — into one archived record per
// benchmark row, so the regression gate runs over the same archive and
// math whether a data point came from CI history or a fresh run.
package runlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// benchDoc is the BENCH_*.json shape: header fields plus one map per
// result row (rows carry heterogeneous numeric fields per benchmark
// family).
type benchDoc struct {
	Benchmark string           `json:"benchmark"`
	Results   []map[string]any `json:"results"`
}

// goBenchLine matches one `go test -bench` result line, capturing the
// name (with the -GOMAXPROCS suffix stripped) and ns/op.
var goBenchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?)\s+ns/op`)

// ImportBench parses data — a BENCH_*.json document or `go test
// -bench` text output — into records stamped created_at = stamp plus a
// per-row millisecond offset (preserving row order under the archive's
// time sort). Row identity goes into Config["bench"], so re-runs of
// the same benchmark land in the same ConfigKey group regardless of
// which format they arrived in.
func ImportBench(data []byte, stamp time.Time) ([]*Record, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("runlog: empty benchmark input")
	}
	if trimmed[0] == '{' {
		return importBenchJSON(trimmed, stamp)
	}
	return importBenchText(trimmed, stamp)
}

func importBenchJSON(data []byte, stamp time.Time) ([]*Record, error) {
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("runlog: benchmark json: %w", err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("runlog: benchmark json has no results")
	}
	var out []*Record
	for i, row := range doc.Results {
		name, _ := row["name"].(string)
		if name == "" {
			return nil, fmt.Errorf("runlog: benchmark row %d has no name", i)
		}
		var wallMS float64
		switch {
		case isNum(row["wall_ms"]):
			wallMS = row["wall_ms"].(float64)
		case isNum(row["ns_per_op"]):
			wallMS = row["ns_per_op"].(float64) / 1e6
		default:
			return nil, fmt.Errorf("runlog: benchmark row %q has neither wall_ms nor ns_per_op", name)
		}
		metrics := map[string]float64{}
		for k, v := range row {
			if k == "name" || k == "wall_ms" {
				continue
			}
			if f, ok := v.(float64); ok {
				metrics[k] = f
			}
		}
		out = append(out, benchRecord(name, wallMS, metrics, stamp, i))
	}
	return out, nil
}

func importBenchText(data []byte, stamp time.Time) ([]*Record, error) {
	var out []*Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := goBenchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		nsPerOp, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out = append(out, benchRecord(m[1], nsPerOp/1e6, map[string]float64{"ns_per_op": nsPerOp}, stamp, len(out)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: benchmark text: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("runlog: no benchmark result lines found")
	}
	return out, nil
}

func benchRecord(name string, wallMS float64, metrics map[string]float64, stamp time.Time, i int) *Record {
	r := &Record{
		Version:   RecordVersion,
		Tool:      "bench",
		CreatedAt: stamp.Add(time.Duration(i) * time.Millisecond).UTC().Format(time.RFC3339Nano),
		Config:    map[string]any{"bench": name},
		WallMS:    wallMS,
		Verdict:   VerdictOK,
	}
	if len(metrics) > 0 {
		r.Metrics = metrics
	}
	return r
}

func isNum(v any) bool {
	_, ok := v.(float64)
	return ok
}
