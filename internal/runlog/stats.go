// Cross-run analytics: robust regression detection and pairwise
// comparison over archived records. The regression rule follows the
// standard robust-statistics recipe — compare the newest run of each
// workload against the median of its recent history, with a noise
// allowance scaled by the median absolute deviation (MAD) — so one
// historic outlier cannot poison the baseline the way a mean/stddev
// gate would, and a genuinely bimodal history widens its own
// allowance instead of flapping.
package runlog

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (mean of the middle two for even
// lengths); 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation of xs around med.
func MAD(xs []float64, med float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// madToSigma rescales a MAD to the standard deviation of a normal
// distribution with the same MAD (the 1.4826 consistency constant).
const madToSigma = 1.4826

// madSigmas is how many MAD-derived sigmas of noise allowance the
// limit grants on top of the relative threshold.
const madSigmas = 4

// RegressOptions tunes Regress. Zero values select the defaults noted
// per field.
type RegressOptions struct {
	// Window is the maximum number of baseline runs per workload
	// (newest first, excluding the candidate). Default 10.
	Window int
	// Threshold is the minimum relative slowdown flagged, e.g. 0.25
	// = 25% over the baseline median. Default 0.25.
	Threshold float64
	// MinWallMS skips workloads whose baseline median is below this
	// (sub-threshold rows are timer noise, not signal). Default 0.
	MinWallMS float64
	// MinBaseline is the minimum number of baseline runs a workload
	// needs before it is judged; shorter histories are skipped with an
	// "insufficient history" reason. Below 3 runs the MAD is
	// degenerate — with one run the median *is* the single
	// measurement, with two any spread between them collapses the
	// envelope to pure jitter — so the default is 3. Set 1 to judge
	// against any non-empty history (the CI gate does, where the
	// baseline is a single checked-in measurement per workload).
	MinBaseline int
}

func (o RegressOptions) withDefaults() RegressOptions {
	if o.Window <= 0 {
		o.Window = 10
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.25
	}
	if o.MinBaseline <= 0 {
		o.MinBaseline = 3
	}
	return o
}

// RegressResult is the verdict for one workload (ConfigKey group).
type RegressResult struct {
	Key              string  `json:"key"`
	Name             string  `json:"name"`
	Runs             int     `json:"runs"`
	CandidateDigest  string  `json:"candidate"`
	CandidateWallMS  float64 `json:"candidate_wall_ms"`
	BaselineN        int     `json:"baseline_n"`
	BaselineMedianMS float64 `json:"baseline_median_ms"`
	BaselineMADMS    float64 `json:"baseline_mad_ms"`
	LimitMS          float64 `json:"limit_ms"`
	Regressed        bool    `json:"regressed"`
	Skipped          bool    `json:"skipped"`
	Reason           string  `json:"reason,omitempty"`
}

// Regress analyses entries (as returned by List: sorted by created_at
// then digest, so the analysis is a pure, deterministic function of
// archive content). Each workload's newest run is the candidate; the
// up-to-Window runs before it are the baseline. The candidate
// regresses when its wall time exceeds
//
//	max(median·(1+Threshold), median + 4·1.4826·MAD)
//
// — the relative threshold catches real slowdowns on quiet baselines,
// the MAD term absorbs workloads whose history is inherently noisy.
// Results are sorted by (Name, Key).
func Regress(entries []Entry, opts RegressOptions) []RegressResult {
	opts = opts.withDefaults()
	groups := map[string][]Entry{}
	for _, e := range entries {
		k := e.Record.ConfigKey()
		groups[k] = append(groups[k], e)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	var out []RegressResult
	for _, k := range keys {
		g := groups[k]
		cand := g[len(g)-1]
		res := RegressResult{
			Key:             k,
			Name:            cand.Record.Name(),
			Runs:            len(g),
			CandidateDigest: cand.Digest,
			CandidateWallMS: cand.Record.WallMS,
		}
		base := g[:len(g)-1]
		if len(base) > opts.Window {
			base = base[len(base)-opts.Window:]
		}
		res.BaselineN = len(base)
		if len(base) < opts.MinBaseline {
			res.Skipped = true
			res.Reason = fmt.Sprintf("insufficient history: %d baseline run(s), need %d", len(base), opts.MinBaseline)
			out = append(out, res)
			continue
		}
		walls := make([]float64, len(base))
		for i, e := range base {
			walls[i] = e.Record.WallMS
		}
		med := Median(walls)
		mad := MAD(walls, med)
		res.BaselineMedianMS = med
		res.BaselineMADMS = mad
		res.LimitMS = math.Max(med*(1+opts.Threshold), med+madSigmas*madToSigma*mad)
		if med < opts.MinWallMS {
			res.Skipped = true
			res.Reason = fmt.Sprintf("baseline median %.2fms below min-wall %.2fms", med, opts.MinWallMS)
			out = append(out, res)
			continue
		}
		res.Regressed = res.CandidateWallMS > res.LimitMS
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Delta is one compared quantity between two records.
type Delta struct {
	Key string  `json:"key"`
	A   float64 `json:"a"`
	B   float64 `json:"b"`
	Pct float64 `json:"pct"` // (B-A)/A·100; 0 when A is 0
}

// Compare diffs two records quantity-by-quantity: wall time, every
// metric, every counter, and the model size statistics when both
// records carry a model. Keys present in only one record appear with
// the other side as 0. Sorted by key.
func Compare(a, b *Record) []Delta {
	vals := map[string][2]float64{}
	add := func(key string, av, bv float64, present bool) {
		if !present && av == 0 && bv == 0 {
			return
		}
		vals[key] = [2]float64{av, bv}
	}
	add("wall_ms", a.WallMS, b.WallMS, true)
	keys := map[string]bool{}
	for k := range a.Metrics {
		keys[k] = true
	}
	for k := range b.Metrics {
		keys[k] = true
	}
	for k := range keys {
		add("metric:"+k, a.Metrics[k], b.Metrics[k], true)
	}
	keys = map[string]bool{}
	for k := range a.Counters {
		keys[k] = true
	}
	for k := range b.Counters {
		keys[k] = true
	}
	for k := range keys {
		add("counter:"+k, float64(a.Counters[k]), float64(b.Counters[k]), true)
	}
	if a.Model != nil && b.Model != nil {
		add("model:states", float64(a.Model.States), float64(b.Model.States), true)
		add("model:transitions", float64(a.Model.Transitions), float64(b.Model.Transitions), true)
		add("model:solver_calls", float64(a.Model.SolverCalls), float64(b.Model.SolverCalls), true)
	}
	out := make([]Delta, 0, len(vals))
	for k, v := range vals {
		d := Delta{Key: k, A: v[0], B: v[1]}
		if v[0] != 0 {
			d.Pct = (v[1] - v[0]) / v[0] * 100
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
