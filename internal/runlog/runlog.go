// Package runlog is the run archive: an append-only, content-addressed
// on-disk store of run records that every command appends to via its
// -run-log flag. One record captures what one invocation did — tool,
// config, input digests, wall time, verdict, stage rollups,
// counter/histogram aggregates, model statistics, captured profiles —
// in the same schema vocabulary as the run manifest
// (pipeline.Manifest), so a record is the durable, queryable residue
// of a run after its process, metrics endpoint and trace file are
// gone. cmd/runstats answers "what ran?", "what changed between A and
// B?" and "did this configuration regress against its history?" from
// this archive alone.
//
// Layout (all writes atomic via pipeline.AtomicWriteFile):
//
//	<dir>/records/<xx>/<digest>.json   one canonical-JSON record,
//	                                   named by its sha256 (xx = first
//	                                   two hex digits)
//	<dir>/profiles/                    pprof captures, referenced by
//	                                   records' "profiles" field
//
// Content addressing makes the archive append-only and idempotent:
// re-putting an identical record is a no-op, two archives can be
// merged with cp, and a torn or tampered file is detected by digest
// mismatch and skipped (counted, never fatal) on read.
package runlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/pipeline"
)

// RecordVersion is the record schema version; List skips records from
// a different shape rather than failing the archive.
const RecordVersion = 1

// Verdicts a record can carry.
const (
	VerdictOK          = "ok"
	VerdictViolation   = "violation"
	VerdictDivergence  = "divergence"
	VerdictInterrupted = "interrupted"
	VerdictError       = "error"
)

// Record is one archived run. Aggregate fields reuse the manifest
// schema types so a record and a manifest describe a run in the same
// vocabulary.
type Record struct {
	Version    int                                  `json:"version"`
	Tool       string                               `json:"tool"`
	CreatedAt  string                               `json:"created_at"` // RFC3339
	Config     map[string]any                       `json:"config,omitempty"`
	Inputs     []pipeline.InputDigest               `json:"inputs,omitempty"`
	WallMS     float64                              `json:"wall_ms"`
	Verdict    string                               `json:"verdict,omitempty"`
	Stages     []pipeline.StageManifest             `json:"stages,omitempty"`
	Counters   map[string]int64                     `json:"counters,omitempty"`
	Histograms map[string]pipeline.HistogramSummary `json:"histograms,omitempty"`
	Model      *pipeline.ModelManifest              `json:"model,omitempty"`
	Profiles   []string                             `json:"profiles,omitempty"`
	Metrics    map[string]float64                   `json:"metrics,omitempty"`
}

// Validate checks the schema-level invariants Put enforces and List
// requires.
func (r *Record) Validate() error {
	if r == nil {
		return errors.New("runlog: nil record")
	}
	if r.Version != RecordVersion {
		return fmt.Errorf("runlog: record version %d, want %d", r.Version, RecordVersion)
	}
	if r.Tool == "" {
		return errors.New("runlog: record missing tool")
	}
	if _, err := time.Parse(time.RFC3339Nano, r.CreatedAt); err != nil {
		return fmt.Errorf("runlog: record created_at %q: %w", r.CreatedAt, err)
	}
	if r.WallMS < 0 {
		return fmt.Errorf("runlog: negative wall_ms %v", r.WallMS)
	}
	return nil
}

// ConfigKey derives the record's workload identity: tool + canonical
// config + input identities, excluding everything measured (times,
// counters, verdicts). Records with equal keys are re-runs of the same
// workload — the population regression analysis compares within.
func (r *Record) ConfigKey() string {
	h := sha256.New()
	io.WriteString(h, r.Tool)
	h.Write([]byte{0})
	cfg, _ := json.Marshal(r.Config) // map keys marshal sorted: canonical
	h.Write(cfg)
	h.Write([]byte{0})
	for _, in := range r.Inputs {
		io.WriteString(h, in.Path)
		h.Write([]byte{0})
		io.WriteString(h, in.SHA256)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Name is the record's human-facing workload label: the bench row name
// for imported benchmarks, otherwise the tool plus its first input.
func (r *Record) Name() string {
	if b, ok := r.Config["bench"].(string); ok && b != "" {
		return b
	}
	if len(r.Inputs) > 0 {
		return r.Tool + " " + filepath.Base(r.Inputs[0].Path)
	}
	return r.Tool
}

// created parses CreatedAt; records only pass Validate with a
// parseable stamp, so the zero time only appears for hand-built
// records.
func (r *Record) created() time.Time {
	t, _ := time.Parse(time.RFC3339Nano, r.CreatedAt)
	return t
}

// FromManifest converts a run manifest into a record skeleton sharing
// its identity and aggregate fields; the caller stamps the measured
// outcome (WallMS, Verdict, Profiles, Metrics) before Put. Commands
// that already assemble a manifest archive the same data this way
// without a second schema.
func FromManifest(man *pipeline.Manifest) *Record {
	if man == nil {
		return &Record{Version: RecordVersion}
	}
	return &Record{
		Version:    RecordVersion,
		Tool:       man.Tool,
		CreatedAt:  man.CreatedAt,
		Config:     man.Config,
		Inputs:     man.Inputs,
		Stages:     man.Stages,
		Counters:   man.Counters,
		Histograms: man.Histograms,
		Model:      man.Model,
	}
}

// Entry is one archived record plus its identity.
type Entry struct {
	Digest string
	Record *Record
}

// Store is an open archive directory. Methods are safe for concurrent
// use by multiple processes: writes are atomic and content-addressed,
// reads tolerate concurrent appends.
type Store struct {
	dir string
}

// Open opens (creating if needed) the archive at dir.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir}
	for _, d := range []string{s.recordsDir(), s.ProfileDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("runlog: open %s: %w", dir, err)
		}
	}
	return s, nil
}

// Dir returns the archive root.
func (s *Store) Dir() string { return s.dir }

// ProfileDir returns the directory run profiles are captured into.
func (s *Store) ProfileDir() string { return filepath.Join(s.dir, "profiles") }

func (s *Store) recordsDir() string { return filepath.Join(s.dir, "records") }

// Put archives one record and returns its digest. Idempotent: an
// identical record (same canonical bytes) maps to the same path and is
// not rewritten.
func (s *Store) Put(r *Record) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	data, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("runlog: encode record: %w", err)
	}
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	path := filepath.Join(s.recordsDir(), digest[:2], digest+".json")
	if _, err := os.Stat(path); err == nil {
		return digest, nil // content-addressed: already archived
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	err = pipeline.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return "", fmt.Errorf("runlog: write record: %w", err)
	}
	return digest, nil
}

// List returns every readable record sorted by (created_at, digest) —
// a deterministic total order, so any analysis over a List is
// reproducible. Corrupt, torn or foreign files are skipped and
// counted, never fatal: one bad byte must not take out the archive.
func (s *Store) List() (entries []Entry, corrupt int, err error) {
	shards, err := os.ReadDir(s.recordsDir())
	if err != nil {
		return nil, 0, fmt.Errorf("runlog: list: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.recordsDir(), shard.Name()))
		if err != nil {
			corrupt++
			continue
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasSuffix(name, ".json") {
				continue
			}
			digest := strings.TrimSuffix(name, ".json")
			data, err := os.ReadFile(filepath.Join(s.recordsDir(), shard.Name(), name))
			if err != nil {
				corrupt++
				continue
			}
			sum := sha256.Sum256(data)
			if hex.EncodeToString(sum[:]) != digest {
				corrupt++ // torn write or tampering: content no longer matches address
				continue
			}
			var r Record
			if json.Unmarshal(data, &r) != nil || r.Validate() != nil {
				corrupt++
				continue
			}
			entries = append(entries, Entry{Digest: digest, Record: &r})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		ti, tj := entries[i].Record.created(), entries[j].Record.created()
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return entries[i].Digest < entries[j].Digest
	})
	return entries, corrupt, nil
}

// Get resolves a digest prefix to its unique record.
func (s *Store) Get(prefix string) (Entry, error) {
	entries, _, err := s.List()
	if err != nil {
		return Entry{}, err
	}
	var found []Entry
	for _, e := range entries {
		if strings.HasPrefix(e.Digest, prefix) {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return Entry{}, fmt.Errorf("runlog: no record matches %q", prefix)
	case 1:
		return found[0], nil
	default:
		return Entry{}, fmt.Errorf("runlog: %q is ambiguous (%d matches)", prefix, len(found))
	}
}
