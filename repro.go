// Package repro is the public API of this reproduction of
// "Learning Concise Models from Long Execution Traces" (Jeppu, Melham,
// Kroening, O'Leary; DAC 2020): passive learning of concise
// finite-state models, with program-synthesized transition predicates,
// from a single long execution trace.
//
// The pipeline is
//
//	trace  →  predicate sequence P  →  automaton
//
// where the predicate sequence is produced by per-window program
// synthesis (internal/synth, internal/predicate) and the automaton by
// a SAT-based minimal-automaton search with segmentation and
// compliance refinement (internal/learn, internal/sat).
//
// Quick start:
//
//	tr := trace.FromEvents([]string{"open", "read", "close", ...})
//	model, err := repro.Learn(tr, repro.LearnOptions{})
//	fmt.Println(model.Automaton.DOT("mymodel"))
//
// The state-merge baselines the paper compares against (kTails, EDSM,
// MINT) are exposed through LearnBaseline. The six benchmark systems
// of the paper's evaluation live under internal/systems and are
// runnable through cmd/tracegen and cmd/repro.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/automaton"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/live"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/statemerge"
	"repro/internal/synth"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// Re-exported core types: the trace model and the learned automata.
type (
	// Trace is an execution trace: a sequence of observations of a
	// fixed variable vector.
	Trace = trace.Trace
	// Schema is the observed-variable declaration of a trace.
	Schema = trace.Schema
	// VarDef declares one observed variable.
	VarDef = trace.VarDef
	// NFA is a learned automaton (every state accepting).
	NFA = automaton.NFA
	// Predicate is a synthesized transition predicate.
	Predicate = predicate.Predicate
	// Source is a pull iterator over trace observations: the
	// streaming counterpart of Trace, for learning from files too
	// large to hold in memory (see LearnSource).
	Source = trace.Source
	// Telemetry bundles a run tracer and a metric registry; attach one
	// via LearnOptions.Telemetry to record spans, counters and latency
	// histograms for a learning run. Nil disables recording.
	Telemetry = pipeline.Telemetry
	// Tracer emits hierarchical run/stage/unit spans as NDJSON.
	Tracer = pipeline.Tracer
	// Registry holds named counters, gauges and histograms, exportable
	// as Prometheus text and JSON (see ServeMetrics).
	Registry = pipeline.Registry
	// MetricsServer is a live /metrics + /metrics.json + pprof HTTP
	// endpoint over a Registry.
	MetricsServer = pipeline.MetricsServer
	// SamplePolicy bounds a Tracer's per-span-kind emission (see
	// Tracer.SetPolicy); exact per-kind rollups are always kept.
	SamplePolicy = pipeline.SamplePolicy
	// SampleRule is one kind's head/tail/stride sampling budget.
	SampleRule = pipeline.SampleRule
	// Profiler captures pprof evidence when an observed operation
	// exceeds its latency budget; attach via Telemetry.Profiler.
	Profiler = pipeline.Profiler
	// Health derives liveness (progress stall, divergence rate) from
	// watched registry counters and backs /healthz.
	Health = pipeline.Health
	// Manifest is the per-run artifact written by -manifest: config,
	// stage metrics, histogram summaries, model statistics, digests.
	Manifest = pipeline.Manifest
	// SynthCache is an on-disk, content-addressed cache of
	// window-predicate synthesis, shareable between concurrent runs and
	// across processes; attach one via LearnOptions.SynthCache (see
	// internal/synthcache). Caching never changes learned models.
	SynthCache = synthcache.Cache
	// SynthCacheStats is a snapshot of a cache's hit/miss/store/corrupt
	// counters.
	SynthCacheStats = synthcache.Stats
)

// OpenSynthCache opens (creating if needed) the synthesis cache rooted
// at dir.
func OpenSynthCache(dir string) (*SynthCache, error) { return synthcache.Open(dir) }

// Telemetry constructors and helpers, re-exported for embedders.
var (
	// NewTracer starts an NDJSON trace on w.
	NewTracer = pipeline.NewTracer
	// NewRegistry returns an empty metric registry.
	NewRegistry = pipeline.NewRegistry
	// ServeMetrics starts the metrics/pprof HTTP listener on addr.
	ServeMetrics = pipeline.ServeMetrics
	// DefaultSamplePolicy is the bounded-emission policy commands apply
	// to high-cardinality span kinds (window, solve).
	DefaultSamplePolicy = pipeline.DefaultSamplePolicy
	// NewProfiler returns a latency-budget-triggered pprof capturer.
	NewProfiler = pipeline.NewProfiler
	// NewHealth returns a Health that reports stalled after the given
	// flat period of every watched progress counter.
	NewHealth = pipeline.NewHealth
	// ReadManifest parses and validates a run manifest.
	ReadManifest = pipeline.ReadManifest
	// FileDigest hashes an input file for a manifest's inputs section.
	FileDigest = pipeline.FileDigest
)

// Streaming decoders for the on-disk trace formats; each reads
// observations one at a time, so LearnSource runs in memory bounded by
// the window size and the number of distinct windows, not the trace
// length.
var (
	// NewCSVSource streams the tool's CSV trace format.
	NewCSVSource = trace.NewCSVSource
	// NewEventsSource streams a one-event-per-line log.
	NewEventsSource = trace.NewEventsSource
	// NewVCDSource streams the value changes of a VCD waveform.
	NewVCDSource = trace.NewVCDSource
	// NewFtraceSource streams an ftrace-style scheduler log.
	NewFtraceSource = trace.NewFtraceSource
	// NewTraceSource adapts an in-memory Trace to Source.
	NewTraceSource = trace.NewTraceSource
)

// LearnOptions tunes the full pipeline. The zero value reproduces the
// paper's configuration: observation window 3 (2 for pure event
// traces), segment window 3, compliance length 2, minimal search from
// 2 states, segmentation on.
type LearnOptions struct {
	// PredicateWindow is the observation window w used for
	// transition-predicate synthesis (Algorithm 1,
	// GeneratePredicate). Zero selects the schema default.
	PredicateWindow int
	// SegmentWindow is the window w used to segment the predicate
	// sequence for model construction. Zero means 3.
	SegmentWindow int
	// ComplianceLen is the compliance-check sequence length l. Zero
	// means 2.
	ComplianceLen int
	// StartStates is the initial automaton size N. Zero means 2.
	StartStates int
	// MaxStates caps the search. Zero means 64.
	MaxStates int
	// NonSegmented disables trace segmentation in model
	// construction (the paper's full-trace baseline).
	NonSegmented bool
	// NoSymmetryBreaking disables the state-ordering symmetry break
	// in the SAT encoding (ablation).
	NoSymmetryBreaking bool
	// Timeout bounds the model-construction search.
	Timeout time.Duration
	// Portfolio races this many SAT solver configurations per solve
	// during model construction (canonical, speculative N+1, restart
	// and decay variants — see internal/learn). Zero or one selects
	// the serial path. The learned model is identical for every
	// Portfolio and Workers setting.
	Portfolio int
	// Workers bounds the predicate-synthesis worker pool and the
	// solver portfolio's concurrency. Zero means one worker per
	// available CPU; 1 forces the serial paths. The result is
	// bit-for-bit identical either way (see predicate.Options.Workers
	// and learn.Options.Workers).
	Workers int
	// Synth tunes the predicate synthesizer.
	Synth synth.Options
	// SynthCache attaches a cross-run synthesis cache: unique windows
	// are looked up before synthesising and published after, so runs
	// sharing a cache directory synthesise each distinct window once
	// fleet-wide. Nil disables caching. The learned model is
	// byte-identical with the cache cold, warm, shared, corrupted or
	// disabled (see internal/synthcache).
	SynthCache *SynthCache
	// Telemetry attaches a run tracer and metric registry to the
	// pipeline (see Telemetry). Nil disables all recording at
	// near-zero cost; telemetry never changes learned models.
	Telemetry *Telemetry
	// Context cancels the run at safe boundaries (between
	// observations during streaming ingestion, inside predicate
	// synthesis, between solver rounds during model construction).
	// Cancellation surfaces as an "interrupted at stage X" error; with
	// checkpointing enabled, the last checkpoint remains valid and
	// resumable. Nil means never cancelled.
	Context context.Context
	// CheckpointDir enables periodic crash-consistent checkpoints of
	// streaming runs (LearnSource only): snapshots of the interner,
	// memo, predicate-run log and model-search state land in this
	// directory, written atomically with a versioned, hash-chained
	// format (see internal/checkpoint). Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the ingest checkpoint interval in
	// observations. Zero means 100000.
	CheckpointEvery int
	// Resume continues from the newest valid checkpoint in
	// CheckpointDir instead of starting fresh. The input source must
	// replay the same observations the checkpointed run consumed
	// (verified by a running digest); the resumed run's model is
	// byte-identical to an uninterrupted one. Errors if CheckpointDir
	// holds no valid checkpoint.
	Resume bool
	// CheckpointInput optionally ties the checkpoint chain to the
	// input file's digest (the one run manifests record).
	CheckpointInput *pipeline.InputDigest
}

// checkpointParams renders the model-affecting options into the
// parameter map checkpoints record and resume verifies — resuming
// under different windows or state bounds would silently learn a
// different model, so it is refused instead.
func checkpointParams(opts LearnOptions) map[string]string {
	return map[string]string{
		"pw":           strconv.Itoa(opts.PredicateWindow),
		"w":            strconv.Itoa(opts.SegmentWindow),
		"l":            strconv.Itoa(opts.ComplianceLen),
		"start_states": strconv.Itoa(opts.StartStates),
		"max_states":   strconv.Itoa(opts.MaxStates),
		"segmented":    strconv.FormatBool(!opts.NonSegmented),
		"symmetry":     strconv.FormatBool(!opts.NoSymmetryBreaking),
	}
}

// CheckpointInfo describes the newest valid checkpoint in a directory
// (see InspectCheckpoint).
type CheckpointInfo struct {
	Path      string
	Seq       int
	Phase     string // "ingest" or "model"
	Offset    int64  // observations consumed
	CreatedAt time.Time
}

// InspectCheckpoint loads and verifies the newest valid checkpoint in
// dir and reports where a resumed run would continue from.
func InspectCheckpoint(dir string) (*CheckpointInfo, error) {
	lr, err := checkpoint.Load(dir)
	if err != nil {
		return nil, err
	}
	return &CheckpointInfo{
		Path:      lr.Path,
		Seq:       lr.State.Seq,
		Phase:     lr.State.Phase,
		Offset:    lr.State.Offset,
		CreatedAt: lr.State.CreatedAt,
	}, nil
}

// Model is a learned model: the automaton, its predicate alphabet, the
// intermediate predicate sequence, and the monitoring interface
// (Check, Explain) of internal/core.
type Model = core.Model

// Violation is the first unexplained behaviour found by Model.Check.
type Violation = core.Violation

// StateInvariant is a candidate per-state invariant extracted by
// Model.StateInvariants (the paper's invariant-synthesis prospect).
type StateInvariant = core.StateInvariant

// Live model maintenance over unbounded streams (see internal/live):
// a LiveMaintainer, built with Pipeline.NewMaintainer and driven by
// Pipeline.MaintainSource, keeps the learned model current as a
// followed trace grows — fast-path acceptance checks, incremental
// solver extension, policy-driven re-minimization — with a bounded
// version history and structured divergence events.
type (
	LiveMaintainer = live.Maintainer
	LiveOptions    = live.Options
	LiveVersion    = live.Version
	LiveDivergence = live.Divergence
)

// NewFollowReader wraps a growing file for live monitoring: it polls
// across EOF and only surfaces whole lines (see trace.FollowReader).
var NewFollowReader = trace.NewFollowReader

// FollowOptions tunes NewFollowReader.
type FollowOptions = trace.FollowOptions

// Sentinel errors re-exported from the pipeline stages.
var (
	// ErrTimeout reports that LearnOptions.Timeout elapsed.
	ErrTimeout = learn.ErrTimeout
	// ErrNoAutomaton reports that no automaton within MaxStates
	// satisfies the constraints.
	ErrNoAutomaton = learn.ErrNoAutomaton
)

// Learn runs the paper's full pipeline on a trace: predicate synthesis
// over sliding windows, then SAT-based model construction with
// segmentation.
func Learn(tr *Trace, opts LearnOptions) (*Model, error) {
	if tr == nil || tr.Len() < 2 {
		return nil, errors.New("repro: trace must have at least 2 observations")
	}
	p, err := NewPipeline(tr.Schema(), opts)
	if err != nil {
		return nil, err
	}
	return p.Learn(tr)
}

// Pipeline is a reusable learner over one trace schema: learning
// several traces of the same system through one Pipeline yields a
// consistent predicate alphabet, and its models can Check fresh
// traces (the paper's monitoring application).
type Pipeline = core.Pipeline

// NewPipeline builds a Pipeline for the schema with the given options.
func NewPipeline(schema *Schema, opts LearnOptions) (*Pipeline, error) {
	if schema == nil {
		return nil, errors.New("repro: nil schema")
	}
	var ckpt checkpoint.Config
	if opts.CheckpointDir != "" {
		ckpt = checkpoint.Config{
			Dir:    opts.CheckpointDir,
			Every:  opts.CheckpointEvery,
			Tool:   "repro",
			Input:  opts.CheckpointInput,
			Params: checkpointParams(opts),
		}
		if opts.Resume {
			lr, err := checkpoint.Load(opts.CheckpointDir)
			if err != nil {
				return nil, err
			}
			ckpt.From = lr
		}
	} else if opts.Resume {
		return nil, errors.New("repro: Resume requires CheckpointDir")
	}
	return core.NewPipeline(schema, core.Options{
		Predicate: predicate.Options{
			Window:  opts.PredicateWindow,
			Workers: opts.Workers,
			Synth:   opts.Synth,
			Cache:   opts.SynthCache,
		},
		Learn: learn.Options{
			Window:             opts.SegmentWindow,
			ComplianceLen:      opts.ComplianceLen,
			StartStates:        opts.StartStates,
			MaxStates:          opts.MaxStates,
			Segmented:          !opts.NonSegmented,
			Timeout:            opts.Timeout,
			NoSymmetryBreaking: opts.NoSymmetryBreaking,
			Portfolio:          opts.Portfolio,
			Workers:            opts.Workers,
		},
		Telemetry:  opts.Telemetry,
		Context:    opts.Context,
		Checkpoint: ckpt,
	})
}

// LearnSource runs the paper's full pipeline on a streamed trace:
// bounded-memory predicate synthesis over a sliding window, then
// SAT-based model construction from the run-length-encoded predicate
// sequence. The learned automaton is byte-identical to Learn over the
// same observations; the model's P field is nil because the expanded
// predicate sequence is never materialised.
func LearnSource(src Source, opts LearnOptions) (*Model, error) {
	if src == nil {
		return nil, errors.New("repro: nil source")
	}
	p, err := NewPipeline(src.Schema(), opts)
	if err != nil {
		return nil, err
	}
	return p.LearnSource(src)
}

// LearnEvents is a convenience wrapper learning directly from an event
// sequence (predicates are the event guards).
func LearnEvents(events []string, opts LearnOptions) (*Model, error) {
	return Learn(trace.FromEvents(events), opts)
}

// LearnTraces learns one model from several runs of the same system
// (shared schema and predicate alphabet; the model accepts every run
// from its initial state).
func LearnTraces(trs []*Trace, opts LearnOptions) (*Model, error) {
	if len(trs) == 0 {
		return nil, errors.New("repro: no traces")
	}
	p, err := NewPipeline(trs[0].Schema(), opts)
	if err != nil {
		return nil, err
	}
	return p.LearnAll(trs)
}

// SaveModel serialises a learned model (automaton, predicate alphabet,
// schema, and the synthesizer seeds that keep fresh-trace abstraction
// consistent) in a human-readable text format.
func SaveModel(w io.Writer, m *Model) error { return core.WriteModel(w, m) }

// LoadModel deserialises a model written by SaveModel. The loaded
// model supports Check and Explain exactly like the original.
func LoadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// Baseline selects a state-merge algorithm for LearnBaseline.
type Baseline int

// The three baselines of the paper's Table II comparison.
const (
	KTails Baseline = iota
	EDSM
	MINT
)

// String names the baseline.
func (b Baseline) String() string {
	switch b {
	case KTails:
		return "ktails"
	case EDSM:
		return "edsm"
	case MINT:
		return "mint"
	default:
		return fmt.Sprintf("Baseline(%d)", int(b))
	}
}

// BaselineOptions tunes LearnBaseline.
type BaselineOptions struct {
	// K is the kTails horizon (KTails only). Zero means 2.
	K int
	// EvidenceThreshold is the EDSM/MINT minimum merge score. Zero
	// means 1.
	EvidenceThreshold int
	// Timeout bounds the run.
	Timeout time.Duration
}

// BaselineResult is a state-merge outcome.
type BaselineResult struct {
	Automaton *NFA
	States    int
	Merges    int
	Duration  time.Duration
}

// LearnBaseline runs one of the state-merge baselines on raw trace
// tokens — the same input MINT consumes in the paper's comparison.
func LearnBaseline(b Baseline, words [][]string, opts BaselineOptions) (*BaselineResult, error) {
	smOpts := statemerge.Options{
		K:                 opts.K,
		EvidenceThreshold: opts.EvidenceThreshold,
		Timeout:           opts.Timeout,
	}
	var (
		res *statemerge.Result
		err error
	)
	switch b {
	case KTails:
		res, err = statemerge.KTails(words, smOpts)
	case EDSM:
		res, err = statemerge.EDSM(words, smOpts)
	case MINT:
		res, err = statemerge.MINT(words, smOpts)
	default:
		return nil, fmt.Errorf("repro: unknown baseline %d", b)
	}
	if err != nil {
		if errors.Is(err, statemerge.ErrTimeout) {
			return nil, fmt.Errorf("repro: baseline %s: %w", b, ErrTimeout)
		}
		return nil, err
	}
	return &BaselineResult{
		Automaton: res.Automaton,
		States:    res.States,
		Merges:    res.Merges,
		Duration:  res.Duration,
	}, nil
}

// Tokenize renders a trace as raw tokens for the baselines: event
// traces become their event sequence; other traces render each
// observation as a "name=value" tuple token, exactly the view a
// state-merge tool has without predicate synthesis.
func Tokenize(tr *Trace) []string {
	if evs, err := tr.Events(); err == nil && tr.Schema().Len() == 1 {
		return evs
	}
	out := make([]string, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		tok := ""
		for j := 0; j < tr.Schema().Len(); j++ {
			if j > 0 {
				tok += ","
			}
			tok += tr.Schema().Var(j).Name + "=" + tr.At(i)[j].String()
		}
		out[i] = tok
	}
	return out
}
