package repro_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/trace"
)

// errKilled is the fault the cut source injects: it stands in for a
// crash (power loss, OOM kill) at an arbitrary observation.
var errKilled = errors.New("simulated crash")

// cutSource delivers the underlying stream faithfully for limit
// observations, then fails. after, if non-nil, runs once at the cut
// instead of failing (used to cancel a context mid-run).
type cutSource struct {
	src   repro.Source
	limit int
	seen  int
	after func() error
}

func (c *cutSource) Schema() *trace.Schema { return c.src.Schema() }

func (c *cutSource) Next() (trace.Observation, error) {
	if c.seen >= c.limit {
		if c.after != nil {
			if err := c.after(); err != nil {
				return nil, err
			}
			c.after = nil
			c.limit = int(^uint(0) >> 1)
			return c.Next()
		}
		return nil, errKilled
	}
	c.seen++
	return c.src.Next()
}

// truncSource ends the stream early with a clean EOF — a shorter
// input, as opposed to cutSource's crash.
type truncSource struct {
	src   repro.Source
	limit int
	seen  int
}

func (s *truncSource) Schema() *trace.Schema { return s.src.Schema() }

func (s *truncSource) Next() (trace.Observation, error) {
	if s.seen >= s.limit {
		return nil, io.EOF
	}
	s.seen++
	return s.src.Next()
}

// saveBytes renders the model file — the byte-identity yardstick for
// every resume test.
func saveBytes(t *testing.T, m *repro.Model) string {
	t.Helper()
	var buf bytes.Buffer
	if err := repro.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestResumeMatchesCleanGolden is the ISSUE's acceptance criterion:
// for every example trace, kill the run at several observation counts,
// resume from the surviving checkpoint, and require a model file
// byte-identical to an uninterrupted run — at worker counts 1 and 4.
func TestResumeMatchesCleanGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "traces", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no traces under examples/traces")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				clean := func() string {
					src, closeSrc := openExampleSource(t, path)
					defer closeSrc()
					m, err := repro.LearnSource(src, repro.LearnOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					return saveBytes(t, m)
				}()

				for _, cut := range []int{12, 25} {
					dir := t.TempDir()
					opts := repro.LearnOptions{
						Workers:         workers,
						CheckpointDir:   dir,
						CheckpointEvery: 8,
					}

					// The killed run must fail, but its checkpoint
					// directory must hold a valid snapshot.
					src, closeSrc := openExampleSource(t, path)
					_, err := repro.LearnSource(&cutSource{src: src, limit: cut}, opts)
					closeSrc()
					if !errors.Is(err, errKilled) {
						t.Fatalf("cut at %d: err = %v, want the injected crash", cut, err)
					}
					info, err := repro.InspectCheckpoint(dir)
					if err != nil {
						t.Fatalf("cut at %d left no loadable checkpoint: %v", cut, err)
					}
					if info.Offset <= 0 || info.Offset > int64(cut) {
						t.Fatalf("cut at %d: checkpoint offset %d out of range", cut, info.Offset)
					}

					src, closeSrc = openExampleSource(t, path)
					opts.Resume = true
					resumed, err := repro.LearnSource(src, opts)
					closeSrc()
					if err != nil {
						t.Fatalf("resume after cut at %d: %v", cut, err)
					}
					if got := saveBytes(t, resumed); got != clean {
						t.Errorf("cut at %d: resumed model differs from clean run\nclean:\n%s\nresumed:\n%s", cut, clean, got)
					}
				}
			})
		}
	}
}

// TestResumeFromModelPhase resumes from a checkpoint taken after
// ingestion finished (during the solver search): the driver must
// fast-forward the whole input, verify its digest, and reach the same
// model without redoing ingestion state from scratch.
func TestResumeFromModelPhase(t *testing.T) {
	path := filepath.Join("examples", "traces", "counter.csv")
	dir := t.TempDir()
	opts := repro.LearnOptions{CheckpointDir: dir, CheckpointEvery: 8}

	src, closeSrc := openExampleSource(t, path)
	clean, err := repro.LearnSource(src, opts)
	closeSrc()
	if err != nil {
		t.Fatal(err)
	}
	info, err := repro.InspectCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Phase != "model" {
		t.Fatalf("newest checkpoint after a complete run is %q, want model phase", info.Phase)
	}

	src, closeSrc = openExampleSource(t, path)
	opts.Resume = true
	resumed, err := repro.LearnSource(src, opts)
	closeSrc()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := saveBytes(t, clean), saveBytes(t, resumed); a != b {
		t.Errorf("model-phase resume diverged\nclean:\n%s\nresumed:\n%s", a, b)
	}
}

// TestInterruptLeavesResumableCheckpoint cancels the run context mid-
// ingestion (the signal path of cmd/t2m), and requires: a non-nil
// "interrupted" error, a valid checkpoint on disk, and a resumed model
// byte-identical to an uninterrupted run.
func TestInterruptLeavesResumableCheckpoint(t *testing.T) {
	path := filepath.Join("examples", "traces", "counter.csv")

	clean := func() string {
		src, closeSrc := openExampleSource(t, path)
		defer closeSrc()
		m, err := repro.LearnSource(src, repro.LearnOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return saveBytes(t, m)
	}()

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := repro.LearnOptions{Context: ctx, CheckpointDir: dir, CheckpointEvery: 8}

	src, closeSrc := openExampleSource(t, path)
	// Cancel after 20 observations; the source keeps delivering, so the
	// stop happens at the pipeline's own cancellation point.
	_, err := repro.LearnSource(&cutSource{src: src, limit: 20, after: func() error { cancel(); return nil }}, opts)
	closeSrc()
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "interrupted at stage") {
		t.Errorf("err = %q, want it to name the interrupted stage", err)
	}
	if _, err := repro.InspectCheckpoint(dir); err != nil {
		t.Fatalf("interrupt left no loadable checkpoint: %v", err)
	}

	src, closeSrc = openExampleSource(t, path)
	resumed, err := repro.LearnSource(src, repro.LearnOptions{CheckpointDir: dir, CheckpointEvery: 8, Resume: true})
	closeSrc()
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, resumed); got != clean {
		t.Errorf("model resumed after interrupt differs from clean run\nclean:\n%s\nresumed:\n%s", clean, got)
	}
}

// TestResumeRefusesChangedInput: a checkpoint must not silently
// continue over a different input. A resume source shorter than the
// checkpointed offset, or with different content, is rejected.
func TestResumeRefusesChangedInput(t *testing.T) {
	path := filepath.Join("examples", "traces", "counter.csv")
	dir := t.TempDir()
	opts := repro.LearnOptions{CheckpointDir: dir, CheckpointEvery: 8}

	src, closeSrc := openExampleSource(t, path)
	_, err := repro.LearnSource(&cutSource{src: src, limit: 20}, opts)
	closeSrc()
	if !errors.Is(err, errKilled) {
		t.Fatal(err)
	}
	info, err := repro.InspectCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Shorter input: EOF before the checkpointed offset.
	src, closeSrc = openExampleSource(t, path)
	opts.Resume = true
	_, err = repro.LearnSource(&truncSource{src: src, limit: int(info.Offset) - 1}, opts)
	closeSrc()
	if err == nil || !strings.Contains(err.Error(), "input changed") {
		t.Errorf("short input: err = %v, want an input-changed rejection", err)
	}

	// Same length and schema, different observations: the running
	// digest over the fast-forwarded prefix must mismatch.
	other, err := trace.NewCSVSource(strings.NewReader(mutatedCounterCSV(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.LearnSource(other, opts)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("mutated input: err = %v, want a digest mismatch", err)
	}
}

// mutatedCounterCSV returns the counter trace with one early value
// changed — same schema, same length, different content.
func mutatedCounterCSV(t *testing.T, path string) string {
	t.Helper()
	tr := readExampleTrace(t, path)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if len(lines) < 5 {
		t.Fatal("counter trace unexpectedly short")
	}
	if lines[3] == lines[4] {
		t.Fatal("mutation would be a no-op")
	}
	lines[3], lines[4] = lines[4], lines[3]
	return strings.Join(lines, "\n")
}
