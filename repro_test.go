package repro_test

import (
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/expr"
	"repro/internal/trace"
)

func TestLearnEventsQuickstart(t *testing.T) {
	var events []string
	for i := 0; i < 5; i++ {
		events = append(events, "open", "read", "read", "close")
	}
	m, err := repro.LearnEvents(events, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.States < 2 || m.States > 4 {
		t.Errorf("states = %d, want a small cycle", m.States)
	}
	if !m.Automaton.IsDeterministic() {
		t.Error("not deterministic")
	}
	if len(m.Alphabet) != 3 {
		t.Errorf("alphabet = %d, want 3 event guards", len(m.Alphabet))
	}
}

func TestLearnValidation(t *testing.T) {
	if _, err := repro.Learn(nil, repro.LearnOptions{}); err == nil {
		t.Error("nil trace accepted")
	}
	short := trace.FromEvents([]string{"a"})
	if _, err := repro.Learn(short, repro.LearnOptions{}); err == nil {
		t.Error("1-observation trace accepted")
	}
	if _, err := repro.NewPipeline(nil, repro.LearnOptions{}); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestLearnNumericCounter(t *testing.T) {
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	tr := trace.New(schema)
	x, dir := int64(1), int64(1)
	for i := 0; i < 60; i++ {
		tr.MustAppend(trace.Observation{expr.IntVal(x)})
		if x >= 6 {
			dir = -1
		} else if x <= 1 {
			dir = 1
		}
		x += dir
	}
	m, err := repro.Learn(tr, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Alphabet["x' = x + 1"]; !ok {
		t.Errorf("alphabet missing x' = x + 1: %v", m.Automaton.Symbols())
	}
	if _, ok := m.Alphabet["x' = x - 1"]; !ok {
		t.Errorf("alphabet missing x' = x - 1: %v", m.Automaton.Symbols())
	}
	if m.States != 4 {
		t.Errorf("states = %d, want 4 (Fig 5 shape)", m.States)
	}
}

func TestTimeoutSurfaces(t *testing.T) {
	var events []string
	for i := 0; i < 3000; i++ {
		events = append(events, []string{"a", "b", "c", "d"}[i%4], []string{"w", "x", "y", "z"}[(i/3)%4])
	}
	_, err := repro.Learn(trace.FromEvents(events), repro.LearnOptions{
		NonSegmented: true,
		Timeout:      time.Millisecond,
	})
	if !errors.Is(err, repro.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestMonitoringCheck(t *testing.T) {
	// Learn a model of an a-b protocol, then check a conforming and
	// a violating trace.
	var good []string
	for i := 0; i < 20; i++ {
		good = append(good, "req", "ack")
	}
	p, err := repro.NewPipeline(trace.EventSchema(), repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Learn(trace.FromEvents(good))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Check(trace.FromEvents([]string{"req", "ack", "req", "ack"}))
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("conforming trace flagged: %v", v)
	}
	// Double request: known symbol, wrong context.
	v, err = m.Check(trace.FromEvents([]string{"req", "ack", "req", "req", "ack"}))
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("double request not flagged")
	}
	if !v.KnownSymbol {
		t.Errorf("double request should be a known symbol in a bad context: %+v", v)
	}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
	// Entirely novel event (mid-trace: a trace-final event is only
	// ever observed as a primed value and does not form a symbol).
	v, err = m.Check(trace.FromEvents([]string{"req", "nak", "ack"}))
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.KnownSymbol {
		t.Errorf("novel event not flagged as novel: %+v", v)
	}
}

func TestExplainWitnesses(t *testing.T) {
	tr := trace.FromEvents([]string{"a", "b", "a", "b", "a"})
	p, err := repro.NewPipeline(trace.EventSchema(), repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Learn(tr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Explain(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range m.Automaton.Symbols() {
		if _, ok := w[sym]; !ok {
			t.Errorf("no witness for %q", sym)
		}
	}
}

func TestBaselines(t *testing.T) {
	var word []string
	for i := 0; i < 30; i++ {
		word = append(word, []string{"a", "b", "c"}[i%3])
	}
	for _, b := range []repro.Baseline{repro.KTails, repro.EDSM, repro.MINT} {
		res, err := repro.LearnBaseline(b, [][]string{word}, repro.BaselineOptions{})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if !res.Automaton.Accepts(word) {
			t.Errorf("%s rejects training word", b)
		}
		if res.States == 0 || res.Duration <= 0 {
			t.Errorf("%s: empty result %+v", b, res)
		}
	}
	if _, err := repro.LearnBaseline(repro.Baseline(99), nil, repro.BaselineOptions{}); err == nil {
		t.Error("unknown baseline accepted")
	}
	if repro.KTails.String() != "ktails" || repro.EDSM.String() != "edsm" || repro.MINT.String() != "mint" {
		t.Error("baseline names wrong")
	}
}

func TestBaselineTimeout(t *testing.T) {
	word := make([]string, 20000)
	for i := range word {
		word[i] = string(rune('a' + i%8))
	}
	_, err := repro.LearnBaseline(repro.EDSM, [][]string{word}, repro.BaselineOptions{Timeout: time.Microsecond})
	if !errors.Is(err, repro.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestTokenize(t *testing.T) {
	// Event trace tokenizes to its events.
	evs := repro.Tokenize(trace.FromEvents([]string{"a", "b"}))
	if len(evs) != 2 || evs[0] != "a" {
		t.Errorf("Tokenize(events) = %v", evs)
	}
	// Mixed trace tokenizes to tuple tokens.
	schema := trace.MustSchema(
		trace.VarDef{Name: "ev", Type: expr.Sym},
		trace.VarDef{Name: "x", Type: expr.Int},
	)
	tr := trace.New(schema)
	tr.MustAppend(trace.Observation{expr.SymVal("read"), expr.IntVal(3)})
	toks := repro.Tokenize(tr)
	if len(toks) != 1 || toks[0] != "ev=read,x=3" {
		t.Errorf("Tokenize(mixed) = %v", toks)
	}
}

func TestConsistentAlphabetAcrossTraces(t *testing.T) {
	// Two traces of the same system through one pipeline share
	// predicate text.
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	mk := func(start int64, n int) *trace.Trace {
		tr := trace.New(schema)
		for i := 0; i < n; i++ {
			tr.MustAppend(trace.Observation{expr.IntVal(start + int64(i))})
		}
		return tr
	}
	p, err := repro.NewPipeline(schema, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := p.Learn(mk(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Learn(mk(100, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Alphabet) != 1 || len(m2.Alphabet) < 1 {
		t.Fatalf("alphabets: %v, %v", m1.Alphabet, m2.Alphabet)
	}
	if m1.P[0] != m2.P[0] {
		t.Errorf("alphabet inconsistent across traces: %q vs %q", m1.P[0], m2.P[0])
	}
}

func TestLearnTraces(t *testing.T) {
	mk := func(evs ...string) *trace.Trace { return trace.FromEvents(evs) }
	t1 := mk("req", "ack", "req", "ack", "req", "ack")
	t2 := mk("req", "nak", "req", "ack", "req", "nak", "req", "ack")
	m, err := repro.LearnTraces([]*repro.Trace{t1, t2}, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Model explains both runs.
	for i, tr := range []*trace.Trace{t1, t2} {
		v, err := m.Check(tr)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			t.Errorf("run %d flagged: %v", i, v)
		}
	}
	if _, err := repro.LearnTraces(nil, repro.LearnOptions{}); err == nil {
		t.Error("no traces accepted")
	}
	if _, err := repro.LearnTraces([]*repro.Trace{mk("a")}, repro.LearnOptions{}); err == nil {
		t.Error("short trace accepted")
	}
}
