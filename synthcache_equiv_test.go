package repro_test

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
)

// openCache opens a synthesis cache handle, failing the test on error.
func openCache(t *testing.T, dir string) *repro.SynthCache {
	t.Helper()
	c, err := repro.OpenSynthCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// modelBytes learns and returns the persisted model bytes — the
// currency of every byte-identity assertion below.
func modelBytes(t *testing.T, tr *repro.Trace, opts repro.LearnOptions) []byte {
	t.Helper()
	m, err := repro.Learn(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// cacheFiles snapshots every stored entry under dir: relative path →
// raw bytes.
func cacheFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".sce" {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = raw
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// corruptEntries flips a byte in the middle of every stored entry
// under dir and returns how many files it damaged.
func corruptEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	for rel, raw := range cacheFiles(t, dir) {
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, rel), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no cache entries to corrupt")
	}
	return n
}

// counterInput returns the canonical counter-system workload — the
// single-input fixture for the mode-invariance, concurrency and
// corruption tests (the golden test below covers the whole corpus).
func counterInput(t *testing.T) *repro.Trace {
	t.Helper()
	for _, in := range diffInputs(t) {
		if in.system == "counter" {
			return in.tr
		}
	}
	t.Fatal("counter system missing from diffInputs")
	return nil
}

// TestSynthCacheFileSetModeInvariant: the set of entries a run
// publishes — file names (content digests) and file contents (outcome
// records) — is a function of the input alone, not of the execution
// mode. Batch and streaming, workers 1 and 4, and a crash +
// checkpoint-resume run must each fill a fresh cache directory with
// byte-identical files, because digests hash window content (not
// interner ids) and records store seed-independent outcomes.
func TestSynthCacheFileSetModeInvariant(t *testing.T) {
	tr := counterInput(t)
	want := modelBytes(t, tr, repro.LearnOptions{Workers: 1})

	refDir := t.TempDir()
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 1, SynthCache: openCache(t, refDir)}); !bytes.Equal(got, want) {
		t.Fatal("batch-w1 cached model diverged from the uncached model")
	}
	refFiles := cacheFiles(t, refDir)
	if len(refFiles) == 0 {
		t.Fatal("batch-w1 run stored no cache entries")
	}

	check := func(name, dir string) {
		t.Helper()
		files := cacheFiles(t, dir)
		if len(files) != len(refFiles) {
			t.Errorf("%s stored %d entries, batch-w1 stored %d", name, len(files), len(refFiles))
		}
		for rel, raw := range refFiles {
			got, ok := files[rel]
			if !ok {
				t.Errorf("%s is missing entry %s", name, rel)
				continue
			}
			if !bytes.Equal(got, raw) {
				t.Errorf("%s entry %s differs from batch-w1's", name, rel)
			}
		}
	}

	// Batch at 4 workers, streaming at 1 and 4.
	dir := t.TempDir()
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 4, SynthCache: openCache(t, dir)}); !bytes.Equal(got, want) {
		t.Error("batch-w4 cached model diverged")
	}
	check("batch-w4", dir)
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		m, err := repro.LearnSource(repro.NewTraceSource(tr), repro.LearnOptions{Workers: workers, SynthCache: openCache(t, dir)})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := repro.SaveModel(&buf, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("stream-w%d cached model diverged", workers)
		}
		check(fmt.Sprintf("stream-w%d", workers), dir)
	}

	// Crash mid-ingestion, resume from the checkpoint: the two partial
	// runs together must fill the directory exactly like one whole run.
	dir = t.TempDir()
	ckpt := t.TempDir()
	opts := repro.LearnOptions{Workers: 4, CheckpointDir: ckpt, CheckpointEvery: 4, SynthCache: openCache(t, dir)}
	cut := tr.Len() / 2
	if _, err := repro.LearnSource(&cutSource{src: repro.NewTraceSource(tr), limit: cut}, opts); !errors.Is(err, errKilled) {
		t.Fatalf("cut at %d: err = %v, want the injected crash", cut, err)
	}
	opts.Resume = true
	opts.SynthCache = openCache(t, dir)
	resumed, err := repro.LearnSource(repro.NewTraceSource(tr), opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	var buf bytes.Buffer
	if err := repro.SaveModel(&buf, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("crash+resume cached model diverged")
	}
	check("crash+resume", dir)
}

// TestSynthCacheGoldenEquivalence runs the whole differential corpus
// (every example trace plus every simulated system) through the cache
// cold and then warm: both models must be byte-identical to the
// uncached one, and the warm run must answer every unique window from
// the cache without a single miss.
func TestSynthCacheGoldenEquivalence(t *testing.T) {
	for _, in := range diffInputs(t) {
		in := in
		t.Run(in.name, func(t *testing.T) {
			want := modelBytes(t, in.tr, repro.LearnOptions{Workers: 4})
			dir := t.TempDir()

			cold := openCache(t, dir)
			if got := modelBytes(t, in.tr, repro.LearnOptions{Workers: 4, SynthCache: cold}); !bytes.Equal(got, want) {
				t.Error("cold-cache model diverged from the uncached model")
			}
			if st := cold.Stats(); st.Stores == 0 {
				t.Errorf("cold run stored nothing: %+v", st)
			}

			warm := openCache(t, dir)
			if got := modelBytes(t, in.tr, repro.LearnOptions{Workers: 4, SynthCache: warm}); !bytes.Equal(got, want) {
				t.Error("warm-cache model diverged from the uncached model")
			}
			if st := warm.Stats(); st.Hits == 0 || st.Misses != 0 || st.Corrupt != 0 {
				t.Errorf("warm run stats %+v, want all hits", st)
			}
		})
	}
}

// TestSynthCacheSharedConcurrent races several learners on one cache
// directory — each with its own handle, the way independent processes
// share one — and then cold-starts a fresh run against the result:
// every concurrent model must be byte-identical to the uncached
// reference, no entry may be seen as corrupt, and the follow-up run
// must hit on every unique window.
func TestSynthCacheSharedConcurrent(t *testing.T) {
	tr := counterInput(t)
	want := modelBytes(t, tr, repro.LearnOptions{Workers: 4})
	dir := t.TempDir()

	const runs = 4
	outs := make([][]byte, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := repro.OpenSynthCache(dir)
			if err != nil {
				errs[i] = err
				return
			}
			m, err := repro.Learn(tr, repro.LearnOptions{Workers: 4, SynthCache: c})
			if err != nil {
				errs[i] = err
				return
			}
			if st := c.Stats(); st.Corrupt != 0 {
				errs[i] = errors.New("concurrent run saw corrupt entries")
				return
			}
			var buf bytes.Buffer
			if err := repro.SaveModel(&buf, m); err != nil {
				errs[i] = err
				return
			}
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Errorf("concurrent run %d diverged from the uncached model", i)
		}
	}

	follow := openCache(t, dir)
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 4, SynthCache: follow}); !bytes.Equal(got, want) {
		t.Error("follow-up model diverged")
	}
	if st := follow.Stats(); st.Hits == 0 || st.Misses != 0 {
		t.Errorf("follow-up run stats %+v, want all hits", st)
	}
}

// TestSynthCacheCorruptionFallsBack damages every stored entry and
// relearns: the checksums must reject them all, the run must fall back
// to fresh synthesis with a byte-identical model, and its republished
// entries must leave the directory fully warm again.
func TestSynthCacheCorruptionFallsBack(t *testing.T) {
	tr := counterInput(t)
	want := modelBytes(t, tr, repro.LearnOptions{Workers: 4})
	dir := t.TempDir()
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 4, SynthCache: openCache(t, dir)}); !bytes.Equal(got, want) {
		t.Fatal("cold-cache model diverged")
	}
	damaged := corruptEntries(t, dir)

	hurt := openCache(t, dir)
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 4, SynthCache: hurt}); !bytes.Equal(got, want) {
		t.Error("corrupted-cache model diverged from the uncached model")
	}
	st := hurt.Stats()
	if st.Corrupt != int64(damaged) {
		t.Errorf("detected %d corrupt entries, damaged %d", st.Corrupt, damaged)
	}
	if st.Hits != 0 {
		t.Errorf("corrupted run reported %d hits, want 0", st.Hits)
	}

	healed := openCache(t, dir)
	if got := modelBytes(t, tr, repro.LearnOptions{Workers: 4, SynthCache: healed}); !bytes.Equal(got, want) {
		t.Error("post-repair model diverged")
	}
	if st := healed.Stats(); st.Misses != 0 || st.Corrupt != 0 {
		t.Errorf("post-repair run stats %+v, want a fully warm directory", st)
	}
}
