package repro_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// liveRun drives one CSV trace through the live maintenance path and
// records, at every version boundary, the version entry together with
// the model text that was current when it was emitted.
type liveVersionRec struct {
	v     repro.LiveVersion
	model string
}

func runLiveCSV(t *testing.T, csvBytes []byte, opts repro.LearnOptions, lopts repro.LiveOptions) (*repro.LiveMaintainer, *repro.Pipeline, []liveVersionRec) {
	t.Helper()
	src, err := trace.NewCSVSource(bytes.NewReader(csvBytes))
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPipeline(src.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []liveVersionRec
	var mnt *repro.LiveMaintainer
	lopts.OnVersion = func(v repro.LiveVersion) {
		recs = append(recs, liveVersionRec{v: v, model: mnt.Model().String()})
	}
	mnt, err = p.NewMaintainer(lopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MaintainSource(src, mnt); err != nil {
		t.Fatal(err)
	}
	return mnt, p, recs
}

// TestLiveMatchesBatchEveryVersion is the ISSUE's property test: for
// the counter, fifo, and serial workloads, the live-maintained model at
// every version boundary V must be byte-identical to a fresh batch
// learn over exactly the prefix the version's watermark covers — at
// worker counts 1 and 4, portfolio off and on. A version covering S
// predicate steps corresponds to the first S+w-1 observations (the
// generator's window w spans w observations per symbol).
func TestLiveMatchesBatchEveryVersion(t *testing.T) {
	const steps = 240
	for _, workload := range []string{"counter", "fifo", "serial"} {
		var buf bytes.Buffer
		if err := experiments.StreamScheduleCSV(&buf, workload, 1, steps); err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(buf.String(), "\n")
		header, data := lines[0], lines[1:]
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", workload, workers), func(t *testing.T) {
				opts := repro.LearnOptions{Workers: workers}
				if workers > 1 {
					opts.Portfolio = 4
				}
				mnt, p, recs := runLiveCSV(t, buf.Bytes(), opts, repro.LiveOptions{})
				if len(recs) == 0 {
					t.Fatal("no versions emitted")
				}
				w := p.Generator().Window()
				for _, rec := range recs {
					obsCount := int(rec.v.Steps) + w - 1
					if obsCount > len(data) {
						t.Fatalf("v%d watermark %d steps exceeds %d observations", rec.v.Version, rec.v.Steps, len(data))
					}
					prefix := header + strings.Join(data[:obsCount], "")
					psrc, err := trace.NewCSVSource(strings.NewReader(prefix))
					if err != nil {
						t.Fatal(err)
					}
					batch, err := repro.LearnSource(psrc, opts)
					if err != nil {
						t.Fatalf("v%d: batch relearn over %d observations: %v", rec.v.Version, obsCount, err)
					}
					if bs := batch.Automaton.String(); bs != rec.model {
						t.Fatalf("v%d (steps %d): live model diverged from batch over the same prefix:\nlive:\n%s\nbatch:\n%s",
							rec.v.Version, rec.v.Steps, rec.model, bs)
					}
				}
				// The final live model must equal a batch learn over the
				// whole stream (the last version's watermark is the
				// stream end whenever the tail carried new evidence; this
				// pins it even when the tail was all fast-path).
				fsrc, err := trace.NewCSVSource(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				full, err := repro.LearnSource(fsrc, opts)
				if err != nil {
					t.Fatal(err)
				}
				if fs, ls := full.Automaton.String(), mnt.Model().String(); fs != ls {
					t.Fatalf("final live model diverged from batch over the full stream:\nlive:\n%s\nbatch:\n%s", ls, fs)
				}
			})
		}
	}
}

// TestLiveReminimizePolicyIdentical pins the ISSUE's policy clause: the
// re-minimization cadence changes when full searches happen, never what
// is learned. Every ReminimizeEvery setting must land on the same final
// model and the same version digests at the same watermarks.
func TestLiveReminimizePolicyIdentical(t *testing.T) {
	const steps = 240
	var buf bytes.Buffer
	if err := experiments.StreamScheduleCSV(&buf, "serial", 1, steps); err != nil {
		t.Fatal(err)
	}
	type boundary struct {
		steps  int64
		digest string
	}
	var baseline []boundary
	for i, every := range []int{0, 1, 4} {
		mnt, _, recs := runLiveCSV(t, buf.Bytes(), repro.LearnOptions{Workers: 1},
			repro.LiveOptions{ReminimizeEvery: every})
		var got []boundary
		for _, rec := range recs {
			got = append(got, boundary{steps: rec.v.Steps, digest: rec.v.Digest})
		}
		if i == 0 {
			baseline = got
			continue
		}
		if len(got) != len(baseline) {
			t.Fatalf("ReminimizeEvery=%d: %d versions, baseline %d", every, len(got), len(baseline))
		}
		for j := range got {
			if got[j] != baseline[j] {
				t.Fatalf("ReminimizeEvery=%d: version %d = %+v, baseline %+v", every, j+1, got[j], baseline[j])
			}
		}
		_ = mnt
	}
}

// TestLiveStreamBoundedMemory is the live counterpart of
// TestStreamingBoundedMemory and the ISSUE's scale criterion: the
// maintainer survives a one-million-step stream inside the same 48 MB
// streaming envelope, settles into the fast path (a handful of
// versions, not thousands), and its final model is byte-identical to a
// batch relearn of the whole stream.
func TestLiveStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-step trace; skipped with -short")
	}
	const steps = 1_000_000
	const ceiling = 48 << 20 // bytes

	var buf bytes.Buffer
	if err := experiments.StreamCounterCSV(&buf, steps, 8); err != nil {
		t.Fatal(err)
	}

	hs := pipeline.StartHeapSampler(time.Millisecond)
	mnt, p, _ := runLiveCSV(t, buf.Bytes(), repro.LearnOptions{}, repro.LiveOptions{})
	peak := hs.Stop()

	w := p.Generator().Window()
	if got, want := mnt.Steps(), int64(steps-w+1); got != want {
		t.Errorf("maintainer consumed %d steps, want %d", got, want)
	}
	if mnt.Version() == 0 || mnt.Model() == nil {
		t.Fatal("no model maintained")
	}
	if mnt.Version() > 16 {
		t.Errorf("%d versions over a periodic stream; fast path not engaging", mnt.Version())
	}
	if peak > ceiling {
		t.Errorf("peak live heap %d bytes (%.1f MB) exceeds the %d MB streaming ceiling",
			peak, float64(peak)/(1<<20), ceiling>>20)
	}

	src, err := trace.NewCSVSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := repro.LearnSource(src, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bs, ls := batch.Automaton.String(), mnt.Model().String(); bs != ls {
		t.Errorf("live model diverged from batch over 1M steps:\nlive:\n%s\nbatch:\n%s", ls, bs)
	}
	t.Logf("peak live heap %.1f MB for %d observations (%d versions, %d states)",
		float64(peak)/(1<<20), steps, mnt.Version(), mnt.Model().NumStates())
}
