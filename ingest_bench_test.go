// Ingestion benchmarks: batch (materialise the whole trace, then
// learn) vs streaming (decode → window → RLE directly off the byte
// stream) on generated modular-counter CSV traces. Run with
//
//	go test -bench 'BenchmarkIngest' -benchtime 3x .
//
// Each benchmark reports peak-MB, the peak live heap sampled during
// one learn, alongside the usual ns/op; cmd/repro -exp ingest prints
// the same comparison as a table and EXPERIMENTS.md records it.
package repro_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// counterCSV returns the generated trace bytes for steps observations.
func counterCSV(b *testing.B, steps int) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := experiments.StreamCounterCSV(&buf, steps, 8); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchIngest(b *testing.B, steps int, streaming bool) {
	b.Helper()
	data := counterCSV(b, steps)
	var peak uint64
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.GC()
		hs := pipeline.StartHeapSampler(time.Millisecond)
		var m *repro.Model
		var err error
		if streaming {
			// NewBytes selects the zero-copy decode path — the same one
			// OpenBytes serves for on-disk traces (mmap'd when possible).
			var src repro.Source
			src, err = trace.NewCSVSource(trace.NewBytes(data))
			if err == nil {
				m, err = repro.LearnSource(src, repro.LearnOptions{})
			}
		} else {
			var tr *trace.Trace
			tr, err = trace.ReadCSV(bytes.NewReader(data))
			if err == nil {
				m, err = repro.Learn(tr, repro.LearnOptions{})
			}
		}
		if p := hs.Stop(); p > peak {
			peak = p
		}
		if err != nil {
			b.Fatal(err)
		}
		if m.States == 0 {
			b.Fatal("no states learned")
		}
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
}

func BenchmarkIngestBatch100k(b *testing.B)     { benchIngest(b, 100_000, false) }
func BenchmarkIngestStreaming100k(b *testing.B) { benchIngest(b, 100_000, true) }
func BenchmarkIngestBatch1M(b *testing.B)       { benchIngest(b, 1_000_000, false) }
func BenchmarkIngestStreaming1M(b *testing.B)   { benchIngest(b, 1_000_000, true) }
