// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFig*      — the six learned-model figures (full pipeline)
//	BenchmarkTable1*   — segmented vs non-segmented model construction
//	BenchmarkTable2*   — state-merge baseline vs model learning
//	BenchmarkFig7*     — runtime vs trace length (integrator sweep)
//	BenchmarkAblation* — window-size and compliance-length ablations
//	BenchmarkSynth*    — the §VII synthesis-engine comparison
//
// cmd/repro prints the same data as formatted rows; the benchmarks
// exist so each measurement is reproducible under the standard Go
// tooling. The paper's non-segmented runs on the two >20k traces take
// >16 hours on its setup; their benchmark counterparts here measure a
// bounded run (timeout) and report it via the timeouts metric rather
// than blocking the suite.
package repro_test

import (
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/trace"
)

// learnBench runs the full pipeline for one benchmark case.
func learnBench(b *testing.B, name string, nonSegmented bool, timeout time.Duration) {
	b.Helper()
	c, err := experiments.CaseByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := c.Generate()
	if err != nil {
		b.Fatal(err)
	}
	opts := c.Options
	opts.NonSegmented = nonSegmented
	opts.Timeout = timeout
	b.ResetTimer()
	timeouts := 0
	for i := 0; i < b.N; i++ {
		m, err := repro.Learn(tr, opts)
		switch {
		case err == nil:
			b.ReportMetric(float64(m.States), "states")
		case nonSegmented && timeout > 0 && isTimeout(err):
			timeouts++
		default:
			b.Fatal(err)
		}
	}
	if timeouts > 0 {
		b.ReportMetric(float64(timeouts), "timeouts")
	}
}

func isTimeout(err error) bool {
	return errors.Is(err, repro.ErrTimeout)
}

// --- Figures: the six learned models -------------------------------

func BenchmarkFig1bUSBSlot(b *testing.B)   { learnBench(b, "USB Slot", false, 0) }
func BenchmarkFig3USBAttach(b *testing.B)  { learnBench(b, "USB Attach", false, 0) }
func BenchmarkFig5Counter(b *testing.B)    { learnBench(b, "Counter", false, 0) }
func BenchmarkFig2SerialPort(b *testing.B) { learnBench(b, "Serial I/O Port", false, 0) }
func BenchmarkFig6RTLinux(b *testing.B)    { learnBench(b, "Linux Kernel", false, 0) }
func BenchmarkFig4Integrator(b *testing.B) { learnBench(b, "Integrator", false, 0) }

// Fig 2a is the state-merge side of the serial-port comparison.
func BenchmarkFig2aSerialPortStateMerge(b *testing.B) {
	table2Bench(b, "Serial I/O Port", true)
}

// --- Table I: segmented vs non-segmented ---------------------------

func BenchmarkTable1SegmentedUSBSlot(b *testing.B)   { learnBench(b, "USB Slot", false, 0) }
func BenchmarkTable1FullTraceUSBSlot(b *testing.B)   { learnBench(b, "USB Slot", true, 0) }
func BenchmarkTable1SegmentedUSBAttach(b *testing.B) { learnBench(b, "USB Attach", false, 0) }
func BenchmarkTable1FullTraceUSBAttach(b *testing.B) { learnBench(b, "USB Attach", true, 0) }
func BenchmarkTable1SegmentedCounter(b *testing.B)   { learnBench(b, "Counter", false, 0) }
func BenchmarkTable1FullTraceCounter(b *testing.B)   { learnBench(b, "Counter", true, 0) }
func BenchmarkTable1SegmentedSerial(b *testing.B)    { learnBench(b, "Serial I/O Port", false, 0) }
func BenchmarkTable1FullTraceSerial(b *testing.B) {
	// The 2076-observation full-trace run is the largest that
	// completes in reasonable bench time; bound it like the paper
	// bounds its 16-hour runs.
	learnBench(b, "Serial I/O Port", true, 2*time.Minute)
}
func BenchmarkTable1SegmentedRTLinux(b *testing.B) { learnBench(b, "Linux Kernel", false, 0) }
func BenchmarkTable1FullTraceRTLinux(b *testing.B) {
	// Paper: >16 hours. Measured as a bounded run; the timeouts
	// metric reports that the bound was hit.
	learnBench(b, "Linux Kernel", true, 30*time.Second)
}
func BenchmarkTable1SegmentedIntegrator(b *testing.B) { learnBench(b, "Integrator", false, 0) }
func BenchmarkTable1FullTraceIntegrator(b *testing.B) {
	// Paper: >16 hours. Measured as a bounded run.
	learnBench(b, "Integrator", true, 30*time.Second)
}

// --- Table II: state merge vs model learning -----------------------

func table2Bench(b *testing.B, name string, merge bool) {
	b.Helper()
	c, err := experiments.CaseByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := c.Generate()
	if err != nil {
		b.Fatal(err)
	}
	if !merge {
		learnBench(b, name, false, 0)
		return
	}
	words := [][]string{repro.Tokenize(tr)}
	b.ResetTimer()
	timeouts := 0
	for i := 0; i < b.N; i++ {
		res, err := repro.LearnBaseline(repro.MINT, words, repro.BaselineOptions{Timeout: 30 * time.Second})
		switch {
		case err == nil:
			b.ReportMetric(float64(res.States), "states")
		case isTimeout(err):
			timeouts++ // the paper's "no model" entries
		default:
			b.Fatal(err)
		}
	}
	if timeouts > 0 {
		b.ReportMetric(float64(timeouts), "timeouts")
	}
}

func BenchmarkTable2StateMergeUSBSlot(b *testing.B)       { table2Bench(b, "USB Slot", true) }
func BenchmarkTable2ModelLearningUSBSlot(b *testing.B)    { table2Bench(b, "USB Slot", false) }
func BenchmarkTable2StateMergeUSBAttach(b *testing.B)     { table2Bench(b, "USB Attach", true) }
func BenchmarkTable2ModelLearningUSBAttach(b *testing.B)  { table2Bench(b, "USB Attach", false) }
func BenchmarkTable2StateMergeCounter(b *testing.B)       { table2Bench(b, "Counter", true) }
func BenchmarkTable2ModelLearningCounter(b *testing.B)    { table2Bench(b, "Counter", false) }
func BenchmarkTable2StateMergeSerial(b *testing.B)        { table2Bench(b, "Serial I/O Port", true) }
func BenchmarkTable2ModelLearningSerial(b *testing.B)     { table2Bench(b, "Serial I/O Port", false) }
func BenchmarkTable2StateMergeRTLinux(b *testing.B)       { table2Bench(b, "Linux Kernel", true) }
func BenchmarkTable2ModelLearningRTLinux(b *testing.B)    { table2Bench(b, "Linux Kernel", false) }
func BenchmarkTable2StateMergeIntegrator(b *testing.B)    { table2Bench(b, "Integrator", true) }
func BenchmarkTable2ModelLearningIntegrator(b *testing.B) { table2Bench(b, "Integrator", false) }

// --- Fig 7: runtime vs trace length --------------------------------

func fig7Bench(b *testing.B, length int, nonSegmented bool) {
	b.Helper()
	tr, err := experiments.GenIntegratorLen(length)
	if err != nil {
		b.Fatal(err)
	}
	opts := repro.LearnOptions{NonSegmented: nonSegmented}
	if nonSegmented {
		opts.Timeout = 30 * time.Second
	}
	b.ResetTimer()
	timeouts := 0
	for i := 0; i < b.N; i++ {
		_, err := repro.Learn(tr, opts)
		switch {
		case err == nil:
		case isTimeout(err):
			timeouts++
		default:
			b.Fatal(err)
		}
	}
	if timeouts > 0 {
		b.ReportMetric(float64(timeouts), "timeouts")
	}
}

func BenchmarkFig7Segmented64(b *testing.B)      { fig7Bench(b, 64, false) }
func BenchmarkFig7Segmented256(b *testing.B)     { fig7Bench(b, 256, false) }
func BenchmarkFig7Segmented1024(b *testing.B)    { fig7Bench(b, 1024, false) }
func BenchmarkFig7Segmented4096(b *testing.B)    { fig7Bench(b, 4096, false) }
func BenchmarkFig7Segmented32768(b *testing.B)   { fig7Bench(b, 32768, false) }
func BenchmarkFig7NonSegmented64(b *testing.B)   { fig7Bench(b, 64, true) }
func BenchmarkFig7NonSegmented256(b *testing.B)  { fig7Bench(b, 256, true) }
func BenchmarkFig7NonSegmented1024(b *testing.B) { fig7Bench(b, 1024, true) }

// --- Ablations ------------------------------------------------------

func BenchmarkAblationWindowW2(b *testing.B) { ablationWindowBench(b, 2) }
func BenchmarkAblationWindowW3(b *testing.B) { ablationWindowBench(b, 3) }
func BenchmarkAblationWindowW5(b *testing.B) { ablationWindowBench(b, 5) }

func ablationWindowBench(b *testing.B, w int) {
	b.Helper()
	c, err := experiments.CaseByName("Counter")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := c.Generate()
	if err != nil {
		b.Fatal(err)
	}
	opts := c.Options
	opts.SegmentWindow = w
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := repro.Learn(tr, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.States), "states")
	}
}

// --- §VII synthesis styles and pipeline stages ----------------------

func BenchmarkSynthStyles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SynthStyles(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicateGeneration isolates the synthesis stage on the
// longest trace, demonstrating the window memoisation (32766 windows,
// a few hundred synthesizer calls).
func BenchmarkPredicateGeneration(b *testing.B) {
	tr, err := experiments.GenIntegrator()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := repro.NewPipeline(tr.Schema(), repro.LearnOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Learn(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSequence isolates predicate-sequence generation (no SAT phase)
// on the longest trace with a fixed worker count. Comparing the two
// benchmarks below measures the parallel engine's speedup; on a
// single-core runner they coincide.
func benchSequence(b *testing.B, workers int) {
	b.Helper()
	tr, err := experiments.GenIntegrator()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := predicate.NewGenerator(tr.Schema(), predicate.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Sequence(tr); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.Stats().UniqueWindows), "uniq")
	}
}

func BenchmarkSequenceSerial(b *testing.B)   { benchSequence(b, 1) }
func BenchmarkSequenceParallel(b *testing.B) { benchSequence(b, 0) }

// BenchmarkFtraceParse isolates the tracing front end on the kernel
// benchmark's full system log.
func BenchmarkFtraceParse(b *testing.B) {
	tr, err := experiments.GenRTLinux()
	if err != nil {
		b.Fatal(err)
	}
	_ = tr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr2, err := experiments.GenRTLinux()
		if err != nil {
			b.Fatal(err)
		}
		if tr2.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
	_ = trace.EventSchema()
}

// --- Model construction: scratch vs incremental vs portfolio --------

// benchGenerateModel isolates SAT-based model construction (no
// predicate stage) on the serial-port predicate sequence, the
// refinement-heaviest benchmark case. Canonical model extraction makes
// all three variants learn the identical automaton; only the work to
// get there differs.
func benchGenerateModel(b *testing.B, opts learn.Options) {
	b.Helper()
	c, err := experiments.CaseByName("Serial I/O Port")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := c.Generate()
	if err != nil {
		b.Fatal(err)
	}
	model, err := repro.Learn(tr, c.Options)
	if err != nil {
		b.Fatal(err)
	}
	opts.Segmented = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := learn.GenerateModel(model.P, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.FinalStates), "states")
		b.ReportMetric(float64(res.Stats.SATConflicts), "conflicts")
	}
}

func BenchmarkGenerateModelScratch(b *testing.B) {
	benchGenerateModel(b, learn.Options{ScratchRefinement: true})
}
func BenchmarkGenerateModelIncremental(b *testing.B) {
	benchGenerateModel(b, learn.Options{})
}
func BenchmarkGenerateModelPortfolio(b *testing.B) {
	benchGenerateModel(b, learn.Options{Portfolio: 4, Workers: 4})
}

// BenchmarkAblationSymmetry measures the learner with the
// state-ordering symmetry break disabled (design-choice ablation;
// compare BenchmarkFig2SerialPort).
func BenchmarkAblationSymmetryOffSerial(b *testing.B) {
	c, err := experiments.CaseByName("Serial I/O Port")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := c.Generate()
	if err != nil {
		b.Fatal(err)
	}
	opts := c.Options
	opts.NoSymmetryBreaking = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Learn(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
}
