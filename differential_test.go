package repro_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/systems"
)

// diffInput is one workload fed through every learning mode by the
// differential harness: an example trace from disk or a fresh
// schedule-driven workload from a registered system.
type diffInput struct {
	name   string
	system string // registered system name, "" for file-backed traces
	tr     *repro.Trace
}

// diffInputs collects every trace under examples/traces plus the
// canonical workload of every registered simulated system, so the
// harness covers both the decoder-backed and the generator-backed
// corpus.
func diffInputs(t *testing.T) []diffInput {
	t.Helper()
	var inputs []diffInput

	paths, err := filepath.Glob(filepath.Join("examples", "traces", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no traces under examples/traces")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		inputs = append(inputs, diffInput{name: "example/" + name, tr: readExampleTrace(t, path)})
	}

	for _, name := range systems.Names() {
		sys, err := systems.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := systems.DriveSchedule(sys, 0, systems.CanonicalObservations(name))
		if err != nil {
			t.Fatalf("driving %s: %v", name, err)
		}
		inputs = append(inputs, diffInput{name: "system/" + name, system: name, tr: tr})
	}
	return inputs
}

// TestDifferentialModes is the cross-mode differential harness: every
// input goes through the batch path, the streaming path at worker
// counts 1 and 4, the portfolio solver, and a crash + checkpoint-resume
// run — and all five must produce byte-identical automata. Any mode
// that drifts from the batch reference is reported by name.
func TestDifferentialModes(t *testing.T) {
	for _, in := range diffInputs(t) {
		in := in
		t.Run(in.name, func(t *testing.T) {
			ref, err := repro.Learn(in.tr, repro.LearnOptions{Workers: 1})
			if err != nil {
				t.Fatalf("batch learn: %v", err)
			}
			want := ref.Automaton.String()

			modes := []struct {
				name string
				opts repro.LearnOptions
			}{
				{"stream-w1", repro.LearnOptions{Workers: 1}},
				{"stream-w4", repro.LearnOptions{Workers: 4}},
				{"portfolio-w4", repro.LearnOptions{Workers: 4, Portfolio: 2}},
			}
			for _, mode := range modes {
				m, err := repro.LearnSource(repro.NewTraceSource(in.tr), mode.opts)
				if err != nil {
					t.Fatalf("%s learn: %v", mode.name, err)
				}
				if got := m.Automaton.String(); got != want {
					t.Errorf("%s automaton diverged from batch:\nbatch:\n%s\n%s:\n%s", mode.name, want, mode.name, got)
				}
				if m.States != ref.States {
					t.Errorf("%s states = %d, batch = %d", mode.name, m.States, ref.States)
				}
			}

			// Warm-cache leg: prime a shared synthesis cache, then
			// relearn entirely from it — the cached run must also
			// reproduce the batch automaton (see internal/synthcache).
			cacheDir := t.TempDir()
			prime, err := repro.OpenSynthCache(cacheDir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := repro.Learn(in.tr, repro.LearnOptions{Workers: 4, SynthCache: prime}); err != nil {
				t.Fatalf("cache-priming learn: %v", err)
			}
			warm, err := repro.OpenSynthCache(cacheDir)
			if err != nil {
				t.Fatal(err)
			}
			m, err := repro.LearnSource(repro.NewTraceSource(in.tr), repro.LearnOptions{Workers: 4, SynthCache: warm})
			if err != nil {
				t.Fatalf("warm-cache learn: %v", err)
			}
			if got := m.Automaton.String(); got != want {
				t.Errorf("warm-cache automaton diverged from batch:\nbatch:\n%s\nwarm-cache:\n%s", want, got)
			}
			if st := warm.Stats(); st.Hits == 0 || st.Misses != 0 {
				t.Errorf("warm-cache run stats %+v, want all hits", st)
			}

			// Crash mid-ingestion, then resume from the surviving
			// checkpoint: the recovered model must also match.
			dir := t.TempDir()
			opts := repro.LearnOptions{Workers: 4, CheckpointDir: dir, CheckpointEvery: 4}
			cut := in.tr.Len() / 2
			_, err = repro.LearnSource(&cutSource{src: repro.NewTraceSource(in.tr), limit: cut}, opts)
			if !errors.Is(err, errKilled) {
				t.Fatalf("cut at %d: err = %v, want the injected crash", cut, err)
			}
			opts.Resume = true
			resumed, err := repro.LearnSource(repro.NewTraceSource(in.tr), opts)
			if err != nil {
				t.Fatalf("resume after cut at %d: %v", cut, err)
			}
			if got := resumed.Automaton.String(); got != want {
				t.Errorf("resumed automaton diverged from batch:\nbatch:\n%s\nresumed:\n%s", want, got)
			}
		})
	}
}

// TestDifferentialReloadFaithful: a model must abstract its own
// training workload identically before and after a save/load round
// trip. Seeds alone do not guarantee this — synthesis with the final
// seed pool can pick a later-seeded expression for an early window —
// so the model file carries the generator's window memo (its genstate
// tail), and this test is the regression gate: before that section
// existed, the reloaded serial model rejected its own training trace
// at step 8.
func TestDifferentialReloadFaithful(t *testing.T) {
	for _, in := range diffInputs(t) {
		in := in
		t.Run(in.name, func(t *testing.T) {
			m, err := repro.Learn(in.tr, repro.LearnOptions{})
			if err != nil {
				t.Fatal(err)
			}
			v, err := active.Conformance(m, in.tr)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Conforms {
				t.Fatalf("in-process model rejects its own training trace: %s", v)
			}

			var buf bytes.Buffer
			if err := repro.SaveModel(&buf, m); err != nil {
				t.Fatal(err)
			}
			loaded, err := repro.LoadModel(&buf)
			if err != nil {
				t.Fatal(err)
			}
			v, err = active.Conformance(loaded, in.tr)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Conforms {
				t.Errorf("reloaded model rejects its own training trace: %s", v)
			}
		})
	}
}

// TestDifferentialProbeFixpoint closes the harness loop through the
// active layer: a model learned from a system's complete canonical
// trace is already at its fixpoint, so one probe round must conform,
// trigger no refinement, and find no distinguishing counterexample.
func TestDifferentialProbeFixpoint(t *testing.T) {
	for _, in := range diffInputs(t) {
		if in.system == "" {
			continue
		}
		in := in
		t.Run(in.system, func(t *testing.T) {
			sys, err := systems.Open(in.system)
			if err != nil {
				t.Fatal(err)
			}
			n := in.tr.Len()
			copts := core.Options{
				Predicate: predicate.Options{Workers: 1},
				Learn:     learn.Options{},
			}
			res, err := active.Refine(sys, in.tr, copts, active.Options{
				ProbeStart: n,
				ProbeCap:   n,
				MaxRounds:  2,
			})
			if err != nil {
				t.Fatalf("refine: %v", err)
			}
			if !res.Stabilized {
				t.Fatalf("complete model did not stabilize in one probe round (%d rounds)", len(res.Rounds))
			}
			if len(res.Rounds) != 1 {
				t.Fatalf("got %d probe rounds, want exactly 1", len(res.Rounds))
			}
			r := res.Rounds[0]
			if !r.Verdict.Conforms {
				t.Errorf("probe verdict: %s, want conforms", r.Verdict)
			}
			if r.Relearned {
				t.Error("conforming probe changed the model")
			}
			if r.Distinction != nil {
				t.Errorf("found a distinguishing word %v on a fixpoint model", r.Distinction.Word)
			}

			ref, err := repro.Learn(in.tr, repro.LearnOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Model.Automaton.String(), ref.Automaton.String(); got != want {
				t.Errorf("probe-round model diverged from the passive model:\npassive:\n%s\nactive:\n%s", want, got)
			}
		})
	}
}
