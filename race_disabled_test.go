//go:build !race

package repro_test

// raceEnabled reports whether the race detector is compiled in; see
// race_enabled_test.go.
const raceEnabled = false
