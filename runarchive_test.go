// End-to-end checks for bounded telemetry at scale (ISSUE 9): the
// sampled trace of a long streaming run stays a small fraction of the
// unsampled one while its per-kind rollups stay byte-identical; span
// sampling never changes the learned model; and an interrupted run's
// closed trace is still valid NDJSON with its rollup epilogue — the
// kill-and-inspect property cmd/t2m's cleanup path relies on.
package repro_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// tickClock returns a deterministic µs clock for Tracer.SetClock: each
// read advances 3µs. Two runs that make the same telemetry calls in
// the same order therefore render identical timestamps and durations.
func tickClock() func() int64 {
	var n atomic.Int64
	return func() int64 { return n.Add(3) }
}

// incrementingCSV generates a steps-observation strictly increasing
// counter CSV: mod > steps means the counter never wraps, so every
// sliding window is distinct and the predicate stage emits one
// "window" span per position — the worst case for trace volume, while
// seed synthesis keeps each window cheap and the learned model tiny.
func incrementingCSV(t testing.TB, steps int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := experiments.StreamCounterCSV(&buf, steps, steps+2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// learnTracedStream learns the CSV stream with a tracer writing to
// path under the given sampling policy (nil = unsampled) and a
// deterministic clock, serially so the span sequence is reproducible.
func learnTracedStream(t testing.TB, data []byte, path string, policy repro.SamplePolicy) *repro.Model {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	tr := repro.NewTracer(w)
	tr.SetClock(tickClock())
	if policy != nil {
		tr.SetPolicy(policy)
	}
	src, err := trace.NewCSVSource(trace.NewBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	model, err := repro.LearnSource(src, repro.LearnOptions{
		Workers:   1,
		Telemetry: &repro.Telemetry{Tracer: tr, Registry: repro.NewRegistry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return model
}

// scanTrace streams over a trace file without loading it, returning
// its size, the per-kind span start counts, and the verbatim epilogue
// ("sample" and "rollup") lines.
func scanTrace(t testing.TB, path string) (size int64, starts map[string]int, epilogue []string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size = fi.Size()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	starts = map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev struct {
			T    string `json:"t"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		switch ev.T {
		case "start":
			starts[ev.Name]++
		case "sample", "rollup":
			epilogue = append(epilogue, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return size, starts, epilogue
}

// TestSampledTraceBoundedAtScale is the 1M-step acceptance check: on a
// streaming run where every window is distinct, the sampled trace file
// must be ≤5% of the unsampled one, its rollup lines byte-identical to
// the unsampled run's (the aggregates lose nothing to sampling), and
// the learned model identical.
func TestSampledTraceBoundedAtScale(t *testing.T) {
	steps := 1_000_000
	if testing.Short() || raceEnabled {
		steps = 100_000
	}
	data := incrementingCSV(t, steps)
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.trace")
	sampledPath := filepath.Join(dir, "sampled.trace")

	mFull := learnTracedStream(t, data, fullPath, nil)
	mSampled := learnTracedStream(t, data, sampledPath, repro.DefaultSamplePolicy())

	if mFull.Automaton.String() != mSampled.Automaton.String() {
		t.Errorf("sampling changed the model:\nfull:\n%s\nsampled:\n%s",
			mFull.Automaton.String(), mSampled.Automaton.String())
	}

	fullSize, fullStarts, fullEpi := scanTrace(t, fullPath)
	sampledSize, sampledStarts, sampledEpi := scanTrace(t, sampledPath)

	// The unsampled run really does emit one window span per position;
	// the sampled run keeps a bounded subset of them.
	wantWindows := steps - 2 // distinct sliding windows of the default width
	if fullStarts["window"] < wantWindows/2 {
		t.Fatalf("unsampled run emitted %d window spans, want ≥%d — workload no longer stresses span volume", fullStarts["window"], wantWindows/2)
	}
	if sampledStarts["window"] >= fullStarts["window"]/10 {
		t.Errorf("sampled run kept %d of %d window spans — sampling not engaging", sampledStarts["window"], fullStarts["window"])
	}
	if sampledSize > fullSize/20 {
		t.Errorf("sampled trace is %d bytes, unsampled %d: want ≤5%%", sampledSize, fullSize)
	}

	// Rollups must not degrade under sampling: identical bytes. The
	// sampled epilogue additionally carries the per-kind sample lines.
	var fullRollups, sampledRollups []string
	for _, l := range fullEpi {
		if strings.HasPrefix(l, `{"t":"rollup"`) {
			fullRollups = append(fullRollups, l)
		}
	}
	sampleLines := 0
	for _, l := range sampledEpi {
		if strings.HasPrefix(l, `{"t":"rollup"`) {
			sampledRollups = append(sampledRollups, l)
		} else {
			sampleLines++
		}
	}
	if len(fullRollups) == 0 {
		t.Fatal("unsampled trace has no rollup lines")
	}
	if strings.Join(fullRollups, "\n") != strings.Join(sampledRollups, "\n") {
		t.Errorf("rollup lines differ between sampled and unsampled runs:\nfull:\n%s\nsampled:\n%s",
			strings.Join(fullRollups, "\n"), strings.Join(sampledRollups, "\n"))
	}
	if sampleLines == 0 {
		t.Error("sampled trace has no sample epilogue lines")
	}
	var windowRollup struct {
		Count int64 `json:"count"`
	}
	for _, l := range sampledRollups {
		if strings.Contains(l, `"kind":"window"`) {
			if err := json.Unmarshal([]byte(l), &windowRollup); err != nil {
				t.Fatal(err)
			}
		}
	}
	if windowRollup.Count != int64(fullStarts["window"]) {
		t.Errorf("window rollup count %d, want %d (every span observed exactly once)", windowRollup.Count, fullStarts["window"])
	}
}

// TestTelemetrySamplingDifferential extends the differential harness
// with the sampled leg: telemetry off, unsampled and sampled tracing
// must all learn byte-identical models.
func TestTelemetrySamplingDifferential(t *testing.T) {
	learn := func(policy repro.SamplePolicy, enabled bool) string {
		opts := repro.LearnOptions{}
		if enabled {
			tr := repro.NewTracer(bufio.NewWriter(&bytes.Buffer{}))
			if policy != nil {
				tr.SetPolicy(policy)
			}
			opts.Telemetry = &repro.Telemetry{Tracer: tr, Registry: repro.NewRegistry()}
		}
		m, err := repro.Learn(updownTrace(400), opts)
		if err != nil {
			t.Fatal(err)
		}
		return m.Automaton.String()
	}
	off := learn(nil, false)
	full := learn(nil, true)
	sampled := learn(repro.DefaultSamplePolicy(), true)
	if off != full || full != sampled {
		t.Errorf("telemetry modes disagree:\noff:\n%s\nfull:\n%s\nsampled:\n%s", off, full, sampled)
	}
}

// TestTracerKillAndInspect pins the interrupted-run guarantee behind
// t2m's SIGTERM cleanup: when the learn dies mid-stream (context
// cancelled at an observation boundary), closing the tracer still
// yields a parseable NDJSON file whose epilogue carries the rollups of
// everything observed up to the kill.
func TestTracerKillAndInspect(t *testing.T) {
	data := incrementingCSV(t, 20_000)
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	tr := repro.NewTracer(&buf)
	tr.SetPolicy(repro.DefaultSamplePolicy())

	src, err := trace.NewCSVSource(trace.NewBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	cut := &cutSource{src: src, limit: 10_000, after: func() error {
		cancel() // the "SIGTERM": cancels the run mid-stream
		return nil
	}}
	_, err = repro.LearnSource(cut, repro.LearnOptions{
		Workers:   1,
		Context:   ctx,
		Telemetry: &repro.Telemetry{Tracer: tr, Registry: repro.NewRegistry()},
	})
	if err == nil {
		t.Fatal("cancelled learn succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("learn failed with %v, want context.Canceled", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The committed bytes must be a complete, inspectable trace: every
	// line parses, every end matches a start, and the epilogue reports
	// rollups for the spans observed before the kill.
	starts := map[float64]bool{}
	rollups := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		switch ev["t"] {
		case "start":
			starts[ev["id"].(float64)] = true
		case "end":
			if !starts[ev["id"].(float64)] {
				t.Errorf("end for unknown span id %v", ev["id"])
			}
		case "rollup":
			rollups[ev["kind"].(string)] = int64(ev["count"].(float64))
		}
	}
	if rollups["window"] < 1_000 {
		t.Errorf("window rollup count %d after kill, want ≥1000 (observations before the cut)", rollups["window"])
	}
}
