// Command t2m (trace-to-model) learns a concise automaton from an
// execution trace file, running the paper's full pipeline: transition-
// predicate synthesis over sliding windows, then SAT-based minimal
// model construction with segmentation and compliance refinement.
//
// Usage:
//
//	t2m -in trace.csv [flags]
//
// Input formats (selected by -informat, default by extension):
//
//	csv     header "name:type,…" (types int, bool, sym), one
//	        observation per row
//	events  one event name per line
//	ftrace  ftrace text log; use -task to select the thread under
//	        analysis
//
// Output is a summary plus the learned automaton, as text or Graphviz
// DOT (-dot FILE).
//
// With -stream the trace file is never materialised: the decoder feeds
// a sliding window directly into predicate synthesis and the learner
// consumes the run-length-encoded predicate stream, so memory stays
// bounded by the number of distinct windows regardless of trace
// length. The learned automaton is byte-identical to the batch path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "input trace file (required; - for stdin)")
		informat  = flag.String("informat", "", "input format: csv, events, ftrace, vcd (default by extension)")
		task      = flag.String("task", "", "ftrace: task to analyse (comm-pid); empty keeps all events")
		signals   = flag.String("signals", "", "vcd: comma-separated signal names to observe (empty = all)")
		dotOut    = flag.String("dot", "", "write the learned automaton as Graphviz DOT to this file")
		saveOut   = flag.String("save", "", "write the learned model (for cmd/monitor) to this file")
		predW     = flag.Int("pw", 0, "predicate window size (0 = schema default)")
		segW      = flag.Int("w", 0, "segmentation window size (0 = 3, the paper's default)")
		compliL   = flag.Int("l", 0, "compliance-check length (0 = 2, the paper's default)")
		maxStates = flag.Int("max-states", 0, "state-count cap (0 = 64)")
		noSeg     = flag.Bool("no-segmentation", false, "disable segmentation (full-trace mode)")
		timeout   = flag.Duration("timeout", 0, "search timeout (0 = none)")
		workers   = flag.Int("j", 0, "predicate-synthesis / solver-portfolio workers (0 = one per CPU, 1 = serial; results identical)")
		portfolio = flag.Int("portfolio", 0, "race this many SAT solver configurations per solve (0/1 = serial; results identical)")
		stream    = flag.Bool("stream", false, "stream the trace: bounded memory, identical model")
		quiet     = flag.Bool("q", false, "print only the automaton")
	)
	flag.Parse()
	if err := run(*in, *informat, *task, *signals, *dotOut, *saveOut, *predW, *segW, *compliL, *maxStates, *workers, *portfolio, *noSeg, *stream, *timeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "t2m:", err)
		os.Exit(1)
	}
}

func run(in, informat, task, signals, dotOut, saveOut string, predW, segW, compliL, maxStates, workers, portfolio int, noSeg, stream bool, timeout time.Duration, quiet bool) error {
	if in == "" {
		return fmt.Errorf("missing -in")
	}
	opts := repro.LearnOptions{
		PredicateWindow: predW,
		SegmentWindow:   segW,
		ComplianceLen:   compliL,
		MaxStates:       maxStates,
		NonSegmented:    noSeg,
		Timeout:         timeout,
		Portfolio:       portfolio,
		Workers:         workers,
	}

	var (
		model   *repro.Model
		obsSeen int64
		nVars   int
	)
	start := time.Now()
	if stream {
		src, closer, err := openSource(in, informat, task, signals)
		if err != nil {
			return err
		}
		nVars = src.Schema().Len()
		model, err = repro.LearnSource(src, opts)
		closer()
		if err != nil {
			return err
		}
		for _, st := range model.Stages {
			if st.Name == "predicate" {
				obsSeen = st.Counter("observations")
			}
		}
	} else {
		tr, err := readTrace(in, informat, task, signals)
		if err != nil {
			return err
		}
		nVars = tr.Schema().Len()
		obsSeen = int64(tr.Len())
		model, err = repro.Learn(tr, opts)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	if !quiet {
		fmt.Printf("trace: %d observations over %d variables\n", obsSeen, nVars)
		fmt.Printf("predicate alphabet: %d symbols\n", len(model.Alphabet))
		fmt.Printf("segments: %d, solver calls: %d, refinements: %d+%d\n",
			model.LearnStats.Segments, model.LearnStats.SolverCalls,
			model.LearnStats.Refinements, model.LearnStats.AcceptRefinements)
		fmt.Printf("solver: %d conflicts, %d decisions, %d propagations, %d learned clauses\n",
			model.LearnStats.SATConflicts, model.LearnStats.SATDecisions,
			model.LearnStats.SATPropagations, model.LearnStats.SATLearned)
		fmt.Printf("learned %d-state automaton in %s\n", model.States, elapsed.Round(time.Millisecond))
		fmt.Print(pipeline.Format(model.Stages))
		fmt.Println()
	}
	fmt.Print(model.Automaton.String())

	if dotOut != "" {
		name := filepath.Base(in)
		if err := os.WriteFile(dotOut, []byte(model.Automaton.DOT(name)), 0o644); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("\nDOT written to %s\n", dotOut)
		}
	}
	if saveOut != "" {
		f, err := os.Create(saveOut)
		if err != nil {
			return err
		}
		if err := repro.SaveModel(f, model); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("model written to %s\n", saveOut)
		}
	}
	return nil
}

func readTrace(in, informat, task, signals string) (*trace.Trace, error) {
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	switch detectFormat(in, informat) {
	case "csv":
		return trace.ReadCSV(f)
	case "events":
		return trace.ReadEvents(f)
	case "ftrace":
		evs, err := trace.ParseFtrace(f)
		if err != nil {
			return nil, err
		}
		return trace.FtraceToTrace(evs, task, nil), nil
	case "vcd":
		var names []string
		if signals != "" {
			names = strings.Split(signals, ",")
		}
		return trace.ReadVCD(f, names)
	default:
		return nil, fmt.Errorf("unknown input format %q", informat)
	}
}

// detectFormat resolves the input format from the flag or the file
// extension.
func detectFormat(in, informat string) string {
	if informat != "" {
		return informat
	}
	switch filepath.Ext(in) {
	case ".csv":
		return "csv"
	case ".ftrace", ".trace":
		return "ftrace"
	case ".vcd":
		return "vcd"
	default:
		return "events"
	}
}

// openSource opens the input as a streaming trace source. The returned
// closer releases the underlying file (a no-op for stdin).
func openSource(in, informat, task, signals string) (repro.Source, func(), error) {
	f := os.Stdin
	closer := func() {}
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		closer = func() { f.Close() }
	}
	switch detectFormat(in, informat) {
	case "csv":
		src, err := repro.NewCSVSource(f)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	case "events":
		return repro.NewEventsSource(f), closer, nil
	case "ftrace":
		return repro.NewFtraceSource(f, task, nil), closer, nil
	case "vcd":
		var names []string
		if signals != "" {
			names = strings.Split(signals, ",")
		}
		src, err := repro.NewVCDSource(f, names)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown input format %q", informat)
	}
}
