// Command t2m (trace-to-model) learns a concise automaton from an
// execution trace file, running the paper's full pipeline: transition-
// predicate synthesis over sliding windows, then SAT-based minimal
// model construction with segmentation and compliance refinement.
//
// Usage:
//
//	t2m -in trace.csv [flags]
//
// Input formats (selected by -informat, default by extension):
//
//	csv     header "name:type,…" (types int, bool, sym), one
//	        observation per row
//	events  one event name per line
//	ftrace  ftrace text log; use -task to select the thread under
//	        analysis
//
// Output is a summary plus the learned automaton, as text or Graphviz
// DOT (-dot FILE).
//
// With -stream the trace file is never materialised: the decoder feeds
// a sliding window directly into predicate synthesis and the learner
// consumes the run-length-encoded predicate stream, so memory stays
// bounded by the number of distinct windows regardless of trace
// length. The learned automaton is byte-identical to the batch path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/pipeline"
	"repro/internal/runlog"
	"repro/internal/trace"
)

// config carries every flag of one t2m invocation.
type config struct {
	in, informat, task, signals string
	dotOut, saveOut             string
	predW, segW, compliL        int
	maxStates                   int
	workers, portfolio          int
	noSeg, stream, quiet        bool
	timeout                     time.Duration

	// Crash safety (see README "Crash safety").
	checkpointDir   string
	checkpointEvery int
	resume          bool

	// Cross-run synthesis cache (see README "Synthesis cache").
	synthCacheDir string

	// Observability (see README "Observability" and "Run analytics").
	traceOut      string
	traceFull     bool
	metricsAddr   string
	metricsLinger time.Duration
	manifestOut   string
	runLog        string
	profileBudget time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "input trace file (required; - for stdin)")
	flag.StringVar(&cfg.informat, "informat", "", "input format: csv, events, ftrace, vcd (default by extension)")
	flag.StringVar(&cfg.task, "task", "", "ftrace: task to analyse (comm-pid); empty keeps all events")
	flag.StringVar(&cfg.signals, "signals", "", "vcd: comma-separated signal names to observe (empty = all)")
	flag.StringVar(&cfg.dotOut, "dot", "", "write the learned automaton as Graphviz DOT to this file")
	flag.StringVar(&cfg.saveOut, "save", "", "write the learned model (for cmd/monitor) to this file")
	flag.IntVar(&cfg.predW, "pw", 0, "predicate window size (0 = schema default)")
	flag.IntVar(&cfg.segW, "w", 0, "segmentation window size (0 = 3, the paper's default)")
	flag.IntVar(&cfg.compliL, "l", 0, "compliance-check length (0 = 2, the paper's default)")
	flag.IntVar(&cfg.maxStates, "max-states", 0, "state-count cap (0 = 64)")
	flag.BoolVar(&cfg.noSeg, "no-segmentation", false, "disable segmentation (full-trace mode)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "search timeout (0 = none)")
	flag.IntVar(&cfg.workers, "j", 0, "predicate-synthesis / solver-portfolio workers (0 = one per CPU, 1 = serial; results identical)")
	flag.IntVar(&cfg.portfolio, "portfolio", 0, "race this many SAT solver configurations per solve (0/1 = serial; results identical)")
	flag.BoolVar(&cfg.stream, "stream", false, "stream the trace: bounded memory, identical model")
	flag.StringVar(&cfg.checkpointDir, "checkpoint", "", "periodically checkpoint the run into this directory (requires -stream)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "ingest checkpoint interval in observations (0 = 100000)")
	flag.BoolVar(&cfg.resume, "resume", false, "resume from the newest valid checkpoint in -checkpoint instead of starting fresh")
	flag.StringVar(&cfg.synthCacheDir, "synth-cache", "", "share synthesized window predicates across runs via this cache directory (identical model, warm runs faster)")
	flag.BoolVar(&cfg.quiet, "q", false, "print only the automaton")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write the run's span/event trace as NDJSON to this file (high-cardinality span kinds are sampled; see -trace-full)")
	flag.BoolVar(&cfg.traceFull, "trace-full", false, "emit every span unsampled (trace file grows with trace length)")
	flag.StringVar(&cfg.runLog, "run-log", "", "append this run's record to the run archive at this directory (see cmd/runstats)")
	flag.DurationVar(&cfg.profileBudget, "profile-budget", 0, "capture pprof heap+CPU profiles when a solver round or window synthesis exceeds this latency (0 = off; profiles land in the -run-log archive)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (e.g. 127.0.0.1:0)")
	flag.DurationVar(&cfg.metricsLinger, "metrics-linger", 0, "keep the metrics endpoint up this long after the run (for scraping short runs)")
	flag.StringVar(&cfg.manifestOut, "manifest", "", "write the run manifest (config, metrics, model stats) as JSON to this file")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "t2m:", err)
		os.Exit(1)
	}
}

// telemetry assembles the run's telemetry from the observability flags:
// a registry whenever any consumer (endpoint, manifest, trace, run
// record) needs one, the NDJSON tracer, and the latency-budget
// profiler. The returned cleanup closes (flushing sampling rollups)
// and commits the trace file; it is written atomically, so an
// interrupted run leaves either the complete closed trace or no file —
// never a torn one. The SIGTERM/SIGINT cancel path runs the same
// cleanup via run's defer, so a killed run still leaves an inspectable
// trace with its per-kind rollups.
func telemetry(cfg config, store *runlog.Store) (*repro.Telemetry, func() error, error) {
	if cfg.traceOut == "" && cfg.metricsAddr == "" && cfg.manifestOut == "" &&
		store == nil && cfg.profileBudget <= 0 {
		return nil, func() error { return nil }, nil
	}
	tel := &repro.Telemetry{Registry: repro.NewRegistry()}
	cleanup := func() error { return nil }
	if cfg.traceOut != "" {
		af, err := pipeline.CreateAtomic(cfg.traceOut)
		if err != nil {
			return nil, nil, err
		}
		tel.Tracer = repro.NewTracer(af)
		if !cfg.traceFull {
			tel.Tracer.SetPolicy(repro.DefaultSamplePolicy())
		}
		cleanup = func() error {
			if err := tel.Tracer.Close(); err != nil {
				af.Abort()
				return err
			}
			return af.Commit()
		}
	}
	if cfg.profileBudget > 0 {
		// Profiles land next to the run records they explain; without an
		// archive they fall back to the working directory.
		dir := "."
		if store != nil {
			dir = store.ProfileDir()
		}
		prefix := fmt.Sprintf("t2m-%d", os.Getpid())
		tel.Profiler = pipeline.NewProfiler(dir, prefix, cfg.profileBudget)
		hs := pipeline.StartHeapSampler(0)
		tel.Profiler.SetHeapSampler(hs)
		prev := cleanup
		cleanup = func() error { hs.Stop(); return prev() }
	}
	return tel, cleanup, nil
}

func run(cfg config) (err error) {
	if cfg.in == "" {
		return fmt.Errorf("missing -in")
	}
	if cfg.checkpointDir != "" && !cfg.stream {
		return fmt.Errorf("-checkpoint requires -stream")
	}
	if cfg.resume && cfg.checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	// SIGINT/SIGTERM cancel the run context: the pipeline stops at the
	// next safe boundary, the deferred cleanups below still flush the
	// telemetry trace and the last checkpoint written stays resumable.
	// The first signal unregisters the handler, so a second one kills
	// the process outright (e.g. when stuck on a blocked stdin read).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	var store *runlog.Store
	if cfg.runLog != "" {
		if store, err = runlog.Open(cfg.runLog); err != nil {
			return err
		}
	}
	tel, cleanup, err := telemetry(cfg, store)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var srv *repro.MetricsServer
	if cfg.metricsAddr != "" {
		srv, err = repro.ServeMetrics(cfg.metricsAddr, tel.Registry)
		if err != nil {
			return err
		}
		defer srv.Close()
		// Printed unconditionally (and before the run) so scripts can
		// resolve a ":0" listener's port.
		fmt.Printf("metrics: listening on %s\n", srv.URL())
	}

	// The input digest feeds both the manifest and the checkpoint
	// chain; computed once, and only when some artifact records it.
	var input *pipeline.InputDigest
	if cfg.in != "-" && (cfg.manifestOut != "" || cfg.checkpointDir != "" || store != nil) {
		d := repro.FileDigest(cfg.in)
		d.Format = detectFormat(cfg.in, cfg.informat)
		input = &d
	}

	var scache *repro.SynthCache
	if cfg.synthCacheDir != "" {
		scache, err = repro.OpenSynthCache(cfg.synthCacheDir)
		if err != nil {
			return err
		}
	}

	opts := repro.LearnOptions{
		PredicateWindow: cfg.predW,
		SegmentWindow:   cfg.segW,
		ComplianceLen:   cfg.compliL,
		MaxStates:       cfg.maxStates,
		NonSegmented:    cfg.noSeg,
		Timeout:         cfg.timeout,
		Portfolio:       cfg.portfolio,
		Workers:         cfg.workers,
		Telemetry:       tel,
		Context:         ctx,
		CheckpointDir:   cfg.checkpointDir,
		CheckpointEvery: cfg.checkpointEvery,
		Resume:          cfg.resume,
		CheckpointInput: input,
		SynthCache:      scache,
	}
	if cfg.resume && !cfg.quiet {
		if info, ierr := repro.InspectCheckpoint(cfg.checkpointDir); ierr == nil {
			fmt.Printf("resuming from checkpoint %d (%s phase, offset %d)\n", info.Seq, info.Phase, info.Offset)
		}
	}

	var (
		model   *repro.Model
		obsSeen int64
		nVars   int
	)
	start := time.Now()
	// The run record is written on every exit path — success, error or
	// interrupt — so the archive keeps the residue of failed runs too.
	defer func() {
		if store == nil {
			return
		}
		verdict := runlog.VerdictOK
		if err != nil {
			verdict = runlog.VerdictError
			if ctx.Err() != nil {
				verdict = runlog.VerdictInterrupted
			}
		}
		if werr := writeRunRecord(store, cfg, model, tel, input, time.Since(start), verdict); werr != nil && err == nil {
			err = werr
		}
	}()
	if cfg.stream {
		src, closer, err := openSource(cfg.in, cfg.informat, cfg.task, cfg.signals)
		if err != nil {
			return err
		}
		nVars = src.Schema().Len()
		model, err = repro.LearnSource(src, opts)
		closer()
		if err != nil {
			return err
		}
		for _, st := range model.Stages {
			if st.Name == "predicate" {
				obsSeen = st.Counter("observations")
			}
		}
	} else {
		tr, err := readTrace(cfg.in, cfg.informat, cfg.task, cfg.signals)
		if err != nil {
			return err
		}
		nVars = tr.Schema().Len()
		obsSeen = int64(tr.Len())
		model, err = repro.Learn(tr, opts)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	if !cfg.quiet {
		fmt.Printf("trace: %d observations over %d variables\n", obsSeen, nVars)
		fmt.Printf("predicate alphabet: %d symbols\n", len(model.Alphabet))
		fmt.Printf("segments: %d, solver calls: %d, refinements: %d+%d\n",
			model.LearnStats.Segments, model.LearnStats.SolverCalls,
			model.LearnStats.Refinements, model.LearnStats.AcceptRefinements)
		fmt.Printf("solver: %d conflicts, %d decisions, %d propagations, %d learned clauses\n",
			model.LearnStats.SATConflicts, model.LearnStats.SATDecisions,
			model.LearnStats.SATPropagations, model.LearnStats.SATLearned)
		if scache != nil {
			st := scache.Stats()
			fmt.Printf("synth cache: %d hits, %d misses, %d stores, %d corrupt\n",
				st.Hits, st.Misses, st.Stores, st.Corrupt)
		}
		fmt.Printf("learned %d-state automaton in %s\n", model.States, elapsed.Round(time.Millisecond))
		fmt.Print(pipeline.Format(model.Stages))
		fmt.Println()
	}
	fmt.Print(model.Automaton.String())

	if cfg.dotOut != "" {
		name := filepath.Base(cfg.in)
		err := pipeline.AtomicWriteFile(cfg.dotOut, func(w io.Writer) error {
			_, werr := io.WriteString(w, model.Automaton.DOT(name))
			return werr
		})
		if err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("\nDOT written to %s\n", cfg.dotOut)
		}
	}
	if cfg.saveOut != "" {
		err := pipeline.AtomicWriteFile(cfg.saveOut, func(w io.Writer) error {
			return repro.SaveModel(w, model)
		})
		if err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("model written to %s\n", cfg.saveOut)
		}
	}
	if cfg.manifestOut != "" {
		if err := writeManifest(cfg, model, tel, input); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("manifest written to %s\n", cfg.manifestOut)
		}
	}
	if srv != nil && cfg.metricsLinger > 0 {
		fmt.Fprintf(os.Stderr, "t2m: metrics endpoint lingering %s at %s\n", cfg.metricsLinger, srv.URL())
		time.Sleep(cfg.metricsLinger)
	}
	return nil
}

// writeManifest assembles and writes the run-manifest artifact: model
// and stage statistics from the learning run, counters and histogram
// summaries from the registry, the invocation's config, and the input
// file's digest.
func writeManifest(cfg config, model *repro.Model, tel *repro.Telemetry, input *pipeline.InputDigest) error {
	man := model.BuildManifest(tel)
	man.Tool = "t2m"
	man.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	man.Config = configMap(cfg)
	if input != nil {
		man.Inputs = []pipeline.InputDigest{*input}
	}
	return man.WriteFile(cfg.manifestOut)
}

// configMap renders the learning-relevant flags for the manifest and
// the run record. Observability flags (trace, metrics, archive paths)
// are deliberately excluded: they never change what was computed, and
// runlog groups re-runs of the same workload by this map.
func configMap(cfg config) map[string]any {
	return map[string]any{
		"informat":        detectFormat(cfg.in, cfg.informat),
		"pw":              cfg.predW,
		"w":               cfg.segW,
		"l":               cfg.compliL,
		"max_states":      cfg.maxStates,
		"no_segmentation": cfg.noSeg,
		"workers":         cfg.workers,
		"portfolio":       cfg.portfolio,
		"stream":          cfg.stream,
		"timeout":         cfg.timeout.String(),
		"synth_cache":     cfg.synthCacheDir,
	}
}

// writeRunRecord archives the run: the manifest skeleton (stages,
// counters, histograms, model statistics) plus the measured outcome
// and any pprof captures the profiler committed.
func writeRunRecord(store *runlog.Store, cfg config, model *repro.Model, tel *repro.Telemetry, input *pipeline.InputDigest, elapsed time.Duration, verdict string) error {
	var man *pipeline.Manifest
	if model != nil {
		man = model.BuildManifest(tel)
	}
	rec := runlog.FromManifest(man)
	rec.Tool = "t2m"
	rec.CreatedAt = time.Now().UTC().Format(time.RFC3339Nano)
	rec.Config = configMap(cfg)
	if input != nil {
		rec.Inputs = []pipeline.InputDigest{*input}
	}
	rec.WallMS = float64(elapsed.Microseconds()) / 1e3
	rec.Verdict = verdict
	if prof := tel.Prof(); prof != nil {
		// Wait for the bounded forward CPU capture so the record's
		// profile list is complete; capture errors degrade the record,
		// not the run.
		_ = prof.Wait()
		rec.Profiles = prof.Files()
	}
	_, err := store.Put(rec)
	return err
}

func readTrace(in, informat, task, signals string) (*trace.Trace, error) {
	var f io.Reader = os.Stdin
	if in != "-" {
		// OpenBytes mmaps the file when the platform allows, so the
		// line decoders run zero-copy over the page cache.
		b, err := trace.OpenBytes(in)
		if err != nil {
			return nil, err
		}
		defer b.Close()
		f = b
	}
	switch detectFormat(in, informat) {
	case "csv":
		return trace.ReadCSV(f)
	case "events":
		return trace.ReadEvents(f)
	case "ftrace":
		evs, err := trace.ParseFtrace(f)
		if err != nil {
			return nil, err
		}
		return trace.FtraceToTrace(evs, task, nil), nil
	case "vcd":
		var names []string
		if signals != "" {
			names = strings.Split(signals, ",")
		}
		return trace.ReadVCD(f, names)
	default:
		return nil, fmt.Errorf("unknown input format %q", informat)
	}
}

// detectFormat resolves the input format from the flag or the file
// extension.
func detectFormat(in, informat string) string {
	if informat != "" {
		return informat
	}
	switch filepath.Ext(in) {
	case ".csv":
		return "csv"
	case ".ftrace", ".trace":
		return "ftrace"
	case ".vcd":
		return "vcd"
	default:
		return "events"
	}
}

// openSource opens the input as a streaming trace source. The returned
// closer releases the underlying file (a no-op for stdin).
func openSource(in, informat, task, signals string) (repro.Source, func(), error) {
	var f io.Reader = os.Stdin
	closer := func() {}
	if in != "-" {
		// OpenBytes mmaps the file when the platform allows: the CSV,
		// events and ftrace sources then decode zero-copy straight out
		// of the page cache (and CSV additionally becomes eligible for
		// sharded block ingestion).
		b, err := trace.OpenBytes(in)
		if err != nil {
			return nil, nil, err
		}
		closer = func() { b.Close() }
		f = b
	}
	switch detectFormat(in, informat) {
	case "csv":
		src, err := repro.NewCSVSource(f)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	case "events":
		return repro.NewEventsSource(f), closer, nil
	case "ftrace":
		return repro.NewFtraceSource(f, task, nil), closer, nil
	case "vcd":
		var names []string
		if signals != "" {
			names = strings.Split(signals, ",")
		}
		src, err := repro.NewVCDSource(f, names)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown input format %q", informat)
	}
}
