// Command monitor checks execution traces against a previously learned
// model (the runtime-verification application that motivates the
// paper's RT-Linux benchmark): it loads a model saved by `t2m -save`,
// abstracts the trace with the same predicate generator the model was
// learned with, and reports the first behaviour the model does not
// explain.
//
// Usage:
//
//	monitor -model system.t2m -in trace.csv [-informat csv|events|ftrace] [-task comm-pid]
//
// With -stream the trace is checked as it is decoded, in memory
// bounded by the window size — the mode to use when following a long
// or live trace (e.g. monitor -stream -in -).
//
// Exit status: 0 when the trace conforms, 1 on a violation, 2 on error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/trace"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model file written by t2m -save (required)")
		in        = flag.String("in", "", "trace file to check (required; - for stdin)")
		informat  = flag.String("informat", "", "input format: csv, events, ftrace (default by extension)")
		task      = flag.String("task", "", "ftrace: task to analyse (comm-pid)")
		workers   = flag.Int("j", 0, "predicate-synthesis workers for trace abstraction (0 = one per CPU, 1 = serial)")
		stream    = flag.Bool("stream", false, "check the trace as it streams: bounded memory, same verdict")
		quiet     = flag.Bool("q", false, "suppress the conforming-trace message")
	)
	flag.Parse()
	code, err := run(*modelPath, *in, *informat, *task, *workers, *stream, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(modelPath, in, informat, task string, workers int, stream, quiet bool) (int, error) {
	if modelPath == "" || in == "" {
		return 2, fmt.Errorf("both -model and -in are required")
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return 2, err
	}
	model, err := repro.LoadModel(mf)
	mf.Close()
	if err != nil {
		return 2, err
	}
	model.SetWorkers(workers)

	var violation *repro.Violation
	if stream {
		src, closer, err := openSource(in, informat, task)
		if err != nil {
			return 2, err
		}
		violation, err = model.CheckSource(src)
		closer()
		if err != nil {
			return 2, err
		}
		if violation == nil {
			if !quiet {
				fmt.Println("ok: model explains the whole trace")
			}
			return 0, nil
		}
	} else {
		tr, err := readTrace(in, informat, task)
		if err != nil {
			return 2, err
		}
		violation, err = model.Check(tr)
		if err != nil {
			return 2, err
		}
		if violation == nil {
			if !quiet {
				fmt.Printf("ok: model explains all %d observations\n", tr.Len())
			}
			return 0, nil
		}
	}
	fmt.Println(violation)
	return 1, nil
}

// openSource opens the input as a streaming source for -stream mode.
func openSource(in, informat, task string) (repro.Source, func(), error) {
	f := os.Stdin
	closer := func() {}
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		closer = func() { f.Close() }
	}
	switch resolveFormat(in, informat) {
	case "csv":
		src, err := repro.NewCSVSource(f)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	case "events":
		return repro.NewEventsSource(f), closer, nil
	case "ftrace":
		return repro.NewFtraceSource(f, task, nil), closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown input format %q", informat)
	}
}

func resolveFormat(in, informat string) string {
	if informat != "" {
		return informat
	}
	switch filepath.Ext(in) {
	case ".csv":
		return "csv"
	case ".ftrace", ".trace":
		return "ftrace"
	default:
		return "events"
	}
}

func readTrace(in, informat, task string) (*trace.Trace, error) {
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	switch resolveFormat(in, informat) {
	case "csv":
		return trace.ReadCSV(f)
	case "events":
		return trace.ReadEvents(f)
	case "ftrace":
		evs, err := trace.ParseFtrace(f)
		if err != nil {
			return nil, err
		}
		return trace.FtraceToTrace(evs, task, nil), nil
	default:
		return nil, fmt.Errorf("unknown input format %q", informat)
	}
}
