// Command monitor checks execution traces against a previously learned
// model (the runtime-verification application that motivates the
// paper's RT-Linux benchmark): it loads a model saved by `t2m -save`,
// abstracts the trace with the same predicate generator the model was
// learned with, and reports the first behaviour the model does not
// explain.
//
// Usage:
//
//	monitor -model system.t2m -in trace.csv [-informat csv|events|ftrace]
//	        [-task comm-pid] [-j N] [-stream] [-q] [-metrics-addr HOST:PORT]
//
// With -stream the trace is checked as it is decoded, in memory
// bounded by the window size — the mode to use when following a long
// or live trace (e.g. monitor -stream -in -). While checking,
// -metrics-addr serves live counters at /metrics and /metrics.json
// plus profiling at /debug/pprof/ — useful when the monitored trace
// runs for hours.
//
// With -active the trace is not read from a file: the named simulated
// system (see internal/systems) is driven live along its canonical
// workload schedule for -probe observations, and the conformance
// verdict — conforms, or diverges at step K with the witness symbol
// sequence — is printed (the single-shot form of cmd/probe's
// refinement loop).
//
// With -live no pre-learned model is needed: the monitor follows a
// growing trace file (or stdin) indefinitely and maintains the model
// as a live object — already-explained behaviour is checked with zero
// solver work, new behaviour extends the solver state incrementally,
// and a policy-driven re-minimization (-reminimize-every) keeps the
// model canonical. Each accepted revision prints a version line; each
// unexplained step prints a structured divergence line. The final
// model is byte-identical to a batch relearn over the consumed stream
// (-save persists it). -idle-exit stops following once the producer
// goes quiet; otherwise SIGINT/SIGTERM shuts the follower down
// cleanly.
//
// Exit status: 0 when the trace conforms (for -live: no divergence
// events), 1 on a violation or divergence, 2 on error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/active"
	"repro/internal/runlog"
	"repro/internal/systems"
	"repro/internal/trace"
)

// usage is the synopsis printed by -h. TestUsageNamesEveryFlag asserts
// it names every registered flag, so it cannot drift the way the old
// hand-maintained synopsis did.
const usage = `usage: monitor -model system.t2m -in trace.csv [-informat csv|events|ftrace]
               [-task comm-pid] [-j N] [-stream] [-q] [-metrics-addr HOST:PORT]
               [-stall-after D] [-synth-cache DIR] [-run-log DIR]
       monitor -model system.t2m -active -system counter|fifo|serial|usbslot
               [-probe N] [-seed N] [-j N] [-q] [-metrics-addr HOST:PORT]
               [-stall-after D] [-synth-cache DIR] [-run-log DIR]
       monitor -live -in trace.csv [-informat csv|events|ftrace] [-task comm-pid]
               [-j N] [-reminimize-every K] [-max-versions N] [-idle-exit D]
               [-save model.t2m] [-q] [-metrics-addr HOST:PORT] [-stall-after D]
               [-synth-cache DIR] [-run-log DIR]

`

// options carries every flag of one monitor invocation.
type options struct {
	modelPath, in, informat, task string
	workers                       int
	stream, quiet                 bool
	metricsAddr                   string
	active                        bool
	system                        string
	probe                         int
	seed                          int64
	synthCacheDir                 string
	runLog                        string
	stallAfter                    time.Duration
	live                          bool
	reminimizeEvery               int
	maxVersions                   int
	idleExit                      time.Duration
	savePath                      string
}

// declareFlags registers all flags on fs; split out so the usage smoke
// test can enumerate them against the synopsis above.
func declareFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.modelPath, "model", "", "model file written by t2m -save (required)")
	fs.StringVar(&o.in, "in", "", "trace file to check (required; - for stdin)")
	fs.StringVar(&o.informat, "informat", "", "input format: csv, events, ftrace (default by extension)")
	fs.StringVar(&o.task, "task", "", "ftrace: task to analyse (comm-pid)")
	fs.IntVar(&o.workers, "j", 0, "predicate-synthesis workers for trace abstraction (0 = one per CPU, 1 = serial)")
	fs.BoolVar(&o.stream, "stream", false, "check the trace as it streams: bounded memory, same verdict")
	fs.BoolVar(&o.quiet, "q", false, "suppress the conforming-trace message")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address while checking")
	fs.BoolVar(&o.active, "active", false, "probe a live simulated system instead of reading a trace file")
	fs.StringVar(&o.system, "system", "", "with -active: system to probe: "+strings.Join(systems.Names(), ", "))
	fs.IntVar(&o.probe, "probe", 0, "with -active: probe length in observations (0 = the system's canonical trace length)")
	fs.Int64Var(&o.seed, "seed", 0, "with -active: workload schedule seed (0 = the system's default)")
	fs.StringVar(&o.synthCacheDir, "synth-cache", "", "share synthesized window predicates across runs via this cache directory (identical verdicts)")
	fs.StringVar(&o.runLog, "run-log", "", "append this run's record to the run archive at this directory (see cmd/runstats)")
	fs.DurationVar(&o.stallAfter, "stall-after", 0, "with -metrics-addr: /healthz reports stalled once no progress counter moved for this long (0 = 2m)")
	fs.BoolVar(&o.live, "live", false, "learn and maintain a model live from a growing trace or stdin (no -model needed)")
	fs.IntVar(&o.reminimizeEvery, "reminimize-every", 0, "with -live: force a full re-minimization every K new segments (0 = only when required)")
	fs.IntVar(&o.maxVersions, "max-versions", 0, "with -live: retained version-history length (0 = 64)")
	fs.DurationVar(&o.idleExit, "idle-exit", 0, "with -live: stop following once no new data arrived for this long (0 = follow until signalled)")
	fs.StringVar(&o.savePath, "save", "", "with -live: write the final maintained model to this file on exit")
	return o
}

// loadModel opens and deserialises the -model file, attaching the
// shared synthesis cache when one is configured (trace abstraction
// re-synthesises windows the model has not seen; the cache shares that
// work with every other run pointing at the directory).
func loadModel(o *options) (*repro.Model, error) {
	mf, err := os.Open(o.modelPath)
	if err != nil {
		return nil, err
	}
	model, err := repro.LoadModel(mf)
	mf.Close()
	if err != nil {
		return nil, err
	}
	if o.synthCacheDir != "" {
		scache, err := repro.OpenSynthCache(o.synthCacheDir)
		if err != nil {
			return nil, err
		}
		model.SetSynthCache(scache)
	}
	return model, nil
}

func main() {
	o := declareFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usage)
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(o *options) (int, error) {
	if o.live {
		return runLive(o)
	}
	if o.modelPath == "" {
		return 2, fmt.Errorf("-model is required (or -live to learn one from the stream)")
	}
	if o.active {
		return runActive(o)
	}
	if o.in == "" {
		return 2, fmt.Errorf("-in is required (or -active to probe a simulated system)")
	}
	model, err := loadModel(o)
	if err != nil {
		return 2, err
	}
	model.SetWorkers(o.workers)

	// SIGINT/SIGTERM cancel the check at the next observation boundary —
	// essential when following a live trace on stdin that never ends.
	// After the first signal the handler is unregistered, so a second
	// signal kills the process outright even if the source read is
	// blocked waiting for input that will never come.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	model.SetContext(ctx)

	start := time.Now()
	tel, srv, err := observability(o)
	if err != nil {
		return 2, err
	}
	if srv != nil {
		defer srv.Close()
	}
	if tel != nil {
		model.SetTelemetry(tel)
	}

	var violation *repro.Violation
	if o.stream {
		src, closer, err := openSource(o.in, o.informat, o.task)
		if err != nil {
			return 2, err
		}
		violation, err = model.CheckSource(src)
		closer()
		if err != nil {
			return 2, err
		}
		if violation == nil {
			if !o.quiet {
				fmt.Println("ok: model explains the whole trace")
			}
			return 0, writeRunRecord(o, tel, runlog.VerdictOK, time.Since(start), nil)
		}
	} else {
		tr, err := readTrace(o.in, o.informat, o.task)
		if err != nil {
			return 2, err
		}
		violation, err = model.Check(tr)
		if err != nil {
			return 2, err
		}
		if violation == nil {
			if !o.quiet {
				fmt.Printf("ok: model explains all %d observations\n", tr.Len())
			}
			return 0, writeRunRecord(o, tel, runlog.VerdictOK, time.Since(start), nil)
		}
	}
	tel.Count("monitor_divergences_total").Add(1)
	fmt.Println(violation)
	return 1, writeRunRecord(o, tel, runlog.VerdictViolation, time.Since(start), nil)
}

// observability assembles the optional telemetry of a checking run: a
// registry whenever the metrics endpoint or the run archive needs one,
// and — with -metrics-addr — the live endpoint with /healthz backed by
// a Health watching the abstraction's progress counter and the
// divergence counter, so a supervisor can detect a wedged or diverging
// monitor without parsing its output.
func observability(o *options) (*repro.Telemetry, *repro.MetricsServer, error) {
	if o.metricsAddr == "" && o.runLog == "" {
		return nil, nil, nil
	}
	tel := &repro.Telemetry{Registry: repro.NewRegistry()}
	if o.metricsAddr == "" {
		return tel, nil, nil
	}
	health := repro.NewHealth(o.stallAfter)
	progress := tel.Registry.Counter("predicate_windows_total")
	health.WatchProgress("predicate_windows_total", func() float64 { return float64(progress.Value()) })
	divName := "monitor_divergences_total"
	if o.live {
		divName = "live_divergence_total"
	}
	div := tel.Registry.Counter(divName)
	health.WatchDivergence(func() float64 { return float64(div.Value()) })
	health.Register(tel.Registry)
	srv, err := repro.ServeMetrics(o.metricsAddr, tel.Registry)
	if err != nil {
		return nil, nil, err
	}
	srv.SetHealth(health)
	fmt.Fprintf(os.Stderr, "monitor: metrics listening on %s\n", srv.URL())
	return tel, srv, nil
}

// writeRunRecord archives the check's outcome; a no-op without
// -run-log. The record's inputs (model file, trace file) give re-runs
// against the same artifacts a shared workload identity in runstats.
func writeRunRecord(o *options, tel *repro.Telemetry, verdict string, elapsed time.Duration, extra map[string]any) error {
	if o.runLog == "" {
		return nil
	}
	store, err := runlog.Open(o.runLog)
	if err != nil {
		return err
	}
	rec := &runlog.Record{
		Version:   runlog.RecordVersion,
		Tool:      "monitor",
		CreatedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Config: map[string]any{
			"informat": o.informat,
			"task":     o.task,
			"workers":  o.workers,
			"stream":   o.stream,
			"active":   o.active,
			"system":   o.system,
			"probe":    o.probe,
			"seed":     o.seed,
		},
		WallMS:  float64(elapsed.Microseconds()) / 1e3,
		Verdict: verdict,
	}
	for k, v := range extra {
		rec.Config[k] = v
	}
	if o.modelPath != "" {
		rec.Inputs = append(rec.Inputs, repro.FileDigest(o.modelPath))
	}
	if !o.active && o.in != "" && o.in != "-" {
		rec.Inputs = append(rec.Inputs, repro.FileDigest(o.in))
	}
	if tel != nil && tel.Registry != nil {
		rec.Counters = tel.Registry.CounterValues()
		rec.Histograms = tel.Registry.Summaries()
	}
	_, err = store.Put(rec)
	return err
}

// runActive drives a simulated system along its canonical schedule and
// checks the observed trace against the model: active conformance
// checking, where the monitor interrogates the system instead of
// waiting for a trace file.
func runActive(o *options) (int, error) {
	if o.system == "" {
		return 2, fmt.Errorf("-active requires -system (one of %s)", strings.Join(systems.Names(), ", "))
	}
	sys, err := systems.Open(o.system)
	if err != nil {
		return 2, err
	}
	model, err := loadModel(o)
	if err != nil {
		return 2, err
	}
	model.SetWorkers(o.workers)
	start := time.Now()
	tel, srv, err := observability(o)
	if err != nil {
		return 2, err
	}
	if srv != nil {
		defer srv.Close()
	}
	if tel != nil {
		model.SetTelemetry(tel)
	}
	n := o.probe
	if n <= 0 {
		n = systems.CanonicalObservations(o.system)
	}
	probe, err := systems.DriveSchedule(sys, o.seed, n)
	if err != nil {
		return 2, err
	}
	verdict, err := active.Conformance(model, probe)
	if err != nil {
		return 2, err
	}
	if verdict.Conforms {
		if !o.quiet {
			fmt.Printf("ok: model explains all %d probed observations\n", probe.Len())
		}
		return 0, writeRunRecord(o, tel, runlog.VerdictOK, time.Since(start), nil)
	}
	tel.Count("monitor_divergences_total").Add(1)
	fmt.Println(verdict)
	return 1, writeRunRecord(o, tel, runlog.VerdictDivergence, time.Since(start), nil)
}

// runLive learns and maintains a model live from a growing trace —
// the monitor finally running indefinitely instead of replaying a
// finished file. The input is followed across EOF (whole lines only;
// a torn final line is retried, never misparsed), every accepted model
// revision prints a version line, and every step the current model
// cannot explain prints a divergence line. The final model covers the
// whole consumed stream and is byte-identical to a batch relearn over
// it (-save persists it in the t2m format).
func runLive(o *options) (int, error) {
	if o.in == "" {
		return 2, fmt.Errorf("-live requires -in (trace file to follow, or - for stdin)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	start := time.Now()
	tel, srv, err := observability(o)
	if err != nil {
		return 2, err
	}
	if srv != nil {
		defer srv.Close()
	}

	src, closer, err := openLiveSource(o, ctx)
	if err != nil {
		return 2, err
	}
	defer closer()

	lopts := repro.LearnOptions{Workers: o.workers, Telemetry: tel, Context: ctx}
	if o.synthCacheDir != "" {
		if lopts.SynthCache, err = repro.OpenSynthCache(o.synthCacheDir); err != nil {
			return 2, err
		}
	}
	p, err := repro.NewPipeline(src.Schema(), lopts)
	if err != nil {
		return 2, err
	}
	mnt, err := p.NewMaintainer(repro.LiveOptions{
		ReminimizeEvery: o.reminimizeEvery,
		MaxVersions:     o.maxVersions,
		Telemetry:       tel,
		OnVersion: func(v repro.LiveVersion) {
			if o.quiet {
				return
			}
			mode := "extended"
			if v.Reminimized {
				mode = "reminimized"
			}
			fmt.Printf("live: version %d: %d states, %d transitions after %d steps (%s, digest %.12s)\n",
				v.Version, v.States, v.Transitions, v.Steps, mode, v.Digest)
		},
		OnDivergence: func(d repro.LiveDivergence) {
			fmt.Printf("live: divergence: %s\n", d)
		},
	})
	if err != nil {
		return 2, err
	}

	if err := p.MaintainSource(src, mnt); err != nil {
		// A signal mid-stream is an orderly shutdown, not a failure:
		// the follower drops its torn tail and the maintained model
		// stands as of the last complete line.
		if ctx.Err() == nil || !errors.Is(err, context.Canceled) {
			return 2, err
		}
	}

	divTotal, _ := mnt.Divergences()
	if !o.quiet {
		fmt.Printf("live: done: %d steps, model version %d, %d divergence(s)\n",
			mnt.Steps(), mnt.Version(), divTotal)
	}
	if o.savePath != "" {
		model, err := p.LiveModel(mnt)
		if err != nil {
			return 2, err
		}
		f, err := os.Create(o.savePath)
		if err != nil {
			return 2, err
		}
		if err := repro.SaveModel(f, model); err != nil {
			f.Close()
			return 2, err
		}
		if err := f.Close(); err != nil {
			return 2, err
		}
	}
	extra := map[string]any{
		"live":             true,
		"reminimize_every": o.reminimizeEvery,
		"max_versions":     o.maxVersions,
		"live_versions":    mnt.Versions(),
		"model_version":    mnt.Version(),
	}
	verdict, code := runlog.VerdictOK, 0
	if divTotal > 0 {
		verdict, code = runlog.VerdictDivergence, 1
	}
	return code, writeRunRecord(o, tel, verdict, time.Since(start), extra)
}

// openLiveSource opens the input for -live: a plain file handle (or
// stdin) behind a FollowReader, so the decoder sees an endless stream
// of whole lines that grows with the file. No mmap here — the file is
// still being written.
func openLiveSource(o *options, ctx context.Context) (repro.Source, func(), error) {
	var r io.Reader = os.Stdin
	closer := func() {}
	if o.in != "-" {
		f, err := os.Open(o.in)
		if err != nil {
			return nil, nil, err
		}
		closer = func() { f.Close() }
		r = f
	}
	fr := repro.NewFollowReader(r, repro.FollowOptions{IdleExit: o.idleExit, Context: ctx})
	switch resolveFormat(o.in, o.informat) {
	case "csv":
		src, err := repro.NewCSVSource(fr)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	case "events":
		return repro.NewEventsSource(fr), closer, nil
	case "ftrace":
		return repro.NewFtraceSource(fr, o.task, nil), closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown input format %q", o.informat)
	}
}

// openSource opens the input as a streaming source for -stream mode.
func openSource(in, informat, task string) (repro.Source, func(), error) {
	var f io.Reader = os.Stdin
	closer := func() {}
	if in != "-" {
		// OpenBytes mmaps the file when the platform allows, so the
		// line decoders run zero-copy over the page cache.
		b, err := trace.OpenBytes(in)
		if err != nil {
			return nil, nil, err
		}
		closer = func() { b.Close() }
		f = b
	}
	switch resolveFormat(in, informat) {
	case "csv":
		src, err := repro.NewCSVSource(f)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return src, closer, nil
	case "events":
		return repro.NewEventsSource(f), closer, nil
	case "ftrace":
		return repro.NewFtraceSource(f, task, nil), closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown input format %q", informat)
	}
}

func resolveFormat(in, informat string) string {
	if informat != "" {
		return informat
	}
	switch filepath.Ext(in) {
	case ".csv":
		return "csv"
	case ".ftrace", ".trace":
		return "ftrace"
	default:
		return "events"
	}
}

func readTrace(in, informat, task string) (*trace.Trace, error) {
	var f io.Reader = os.Stdin
	if in != "-" {
		b, err := trace.OpenBytes(in)
		if err != nil {
			return nil, err
		}
		defer b.Close()
		f = b
	}
	switch resolveFormat(in, informat) {
	case "csv":
		return trace.ReadCSV(f)
	case "events":
		return trace.ReadEvents(f)
	case "ftrace":
		evs, err := trace.ParseFtrace(f)
		if err != nil {
			return nil, err
		}
		return trace.FtraceToTrace(evs, task, nil), nil
	default:
		return nil, fmt.Errorf("unknown input format %q", informat)
	}
}
