// Command repro regenerates the paper's evaluation: the learned-model
// figures (Fig 1b, 2b, 3, 4, 5, 6), the runtime tables (Table I and
// Table II), the scalability plot (Fig 7) and the ablations DESIGN.md
// adds. Results are printed as text tables; figures can additionally
// be written as Graphviz DOT files.
//
// Usage:
//
//	repro -exp all                       # everything (long)
//	repro -exp figures [-dotdir DIR]     # learn all six models
//	repro -exp fig5                      # one figure
//	repro -exp table1 [-full-timeout D]
//	repro -exp table2 [-merge-timeout D]
//	repro -exp fig7 [-max-exp K]
//	repro -exp ablation-w | ablation-l | synth-styles | coverage
//	repro -exp active [-active-out BENCH_active.json]
//	repro -exp memo [-memo-out BENCH_memo.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/runlog"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: all, figures, fig1b, fig2, fig3, fig4, fig5, fig6, fig7, table1, table2, ablation-w, ablation-l, synth-styles, coverage, ingest, solve, active, memo")
		activeOut    = flag.String("active-out", "", "with -exp active: also write the results as a BENCH_active.json document to this file")
		solveOut     = flag.String("solve-out", "", "with -exp solve: also write the results as a BENCH_solve.json document to this file")
		memoOut      = flag.String("memo-out", "", "with -exp memo: also write the results as a BENCH_memo.json document to this file")
		dotDir       = flag.String("dotdir", "", "write learned automata as DOT files into this directory")
		fullTimeout  = flag.Duration("full-timeout", 60*time.Second, "timeout for non-segmented runs (Table I, Fig 7)")
		mergeTimeout = flag.Duration("merge-timeout", 60*time.Second, "timeout for state-merge runs (Table II)")
		maxExp       = flag.Int("max-exp", 15, "largest 2^k trace length for Fig 7")
		workers      = flag.Int("j", 0, "predicate-synthesis / solver-portfolio workers (0 = one per CPU, 1 = serial; results identical)")
		portfolio    = flag.Int("portfolio", 0, "race this many SAT solver configurations per solve (0/1 = serial; results identical)")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address; counters accumulate across experiment runs")
		synthCache   = flag.String("synth-cache", "", "share synthesized window predicates across experiment runs via this cache directory (identical results, warm runs faster)")
		runLog       = flag.String("run-log", "", "append this evaluation's record to the run archive at this directory (see cmd/runstats)")
	)
	flag.Parse()
	experiments.Workers = *workers
	experiments.Portfolio = *portfolio
	if *synthCache != "" {
		scache, err := repro.OpenSynthCache(*synthCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		experiments.SynthCache = scache
	}

	// SIGINT/SIGTERM abort the evaluation at the next observation or
	// solver-round boundary instead of leaving a half-printed table; a
	// second signal (handler unregistered once cancelled) kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	experiments.Context = ctx
	if *metricsAddr != "" {
		experiments.Telemetry = &repro.Telemetry{Registry: repro.NewRegistry()}
		srv, err := repro.ServeMetrics(*metricsAddr, experiments.Telemetry.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: metrics listening on %s\n", srv.URL())
	}
	if *runLog != "" && experiments.Telemetry == nil {
		// Without a metrics endpoint the record still wants the
		// accumulated counters, so attach a registry either way.
		experiments.Telemetry = &repro.Telemetry{Registry: repro.NewRegistry()}
	}
	start := time.Now()
	if err := run(*exp, *dotDir, *activeOut, *memoOut, *solveOut, *fullTimeout, *mergeTimeout, *maxExp); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *runLog != "" {
		if err := writeRunRecord(*runLog, *exp, *workers, *portfolio, time.Since(start)); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}

// writeRunRecord archives one evaluation invocation: which experiment
// ran, with what parallelism, how long it took, and the telemetry
// counters accumulated across its runs.
func writeRunRecord(dir, exp string, workers, portfolio int, elapsed time.Duration) error {
	store, err := runlog.Open(dir)
	if err != nil {
		return err
	}
	rec := &runlog.Record{
		Version:   runlog.RecordVersion,
		Tool:      "repro",
		CreatedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Config: map[string]any{
			"exp":       exp,
			"workers":   workers,
			"portfolio": portfolio,
		},
		WallMS:  float64(elapsed.Microseconds()) / 1e3,
		Verdict: runlog.VerdictOK,
	}
	if tel := experiments.Telemetry; tel != nil && tel.Registry != nil {
		rec.Counters = tel.Registry.CounterValues()
		rec.Histograms = tel.Registry.Summaries()
	}
	_, err = store.Put(rec)
	return err
}

var figureCase = map[string]string{
	"fig1b": "USB Slot", "fig2": "Serial I/O Port", "fig3": "USB Attach",
	"fig4": "Integrator", "fig5": "Counter", "fig6": "Linux Kernel",
}

func run(exp, dotDir, activeOut, memoOut, solveOut string, fullTimeout, mergeTimeout time.Duration, maxExp int) error {
	switch {
	case exp == "all":
		for _, e := range []string{"figures", "table1", "table2", "fig7", "ablation-w", "ablation-l", "ablation-sym", "synth-styles", "coverage", "invariants", "properties", "solve", "active", "memo"} {
			if err := run(e, dotDir, activeOut, memoOut, solveOut, fullTimeout, mergeTimeout, maxExp); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case exp == "figures":
		for _, f := range []string{"fig1b", "fig3", "fig5", "fig2", "fig4", "fig6"} {
			if err := runFigure(f, dotDir); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case figureCase[exp] != "":
		return runFigure(exp, dotDir)
	case exp == "table1":
		return runTable1(fullTimeout)
	case exp == "table2":
		return runTable2(mergeTimeout)
	case exp == "fig7":
		return runFig7(fullTimeout, maxExp)
	case exp == "ablation-w":
		return runAblationW()
	case exp == "ablation-l":
		return runAblationL()
	case exp == "ablation-sym":
		return runAblationSym()
	case exp == "synth-styles":
		return runSynthStyles()
	case exp == "coverage":
		return runCoverage()
	case exp == "ingest":
		return runIngest()
	case exp == "solve":
		return runSolve(solveOut)
	case exp == "active":
		return runActive(activeOut)
	case exp == "memo":
		return runMemo(memoOut)
	case exp == "invariants":
		return runInvariants()
	case exp == "properties":
		return runProperties()
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runFigure(fig, dotDir string) error {
	c, err := experiments.CaseByName(figureCase[fig])
	if err != nil {
		return err
	}
	start := time.Now()
	m, err := experiments.LearnCase(c, 0)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%s): learned %d states (paper: %d) in %s\n",
		fig, c.Name, m.States, c.PaperStates, time.Since(start).Round(time.Millisecond))
	fmt.Print(pipeline.Format(m.Stages))
	fmt.Print(m.Automaton.String())
	if fig == "fig2" {
		// Fig 2 contrasts the state-merge model (2a) with ours (2b).
		tr, err := c.Generate()
		if err != nil {
			return err
		}
		base, err := repro.LearnBaseline(repro.MINT, [][]string{repro.Tokenize(tr)}, repro.BaselineOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("fig2a (state merge): %d states\n", base.States)
	}
	if dotDir != "" {
		if err := os.MkdirAll(dotDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dotDir, fig+".dot")
		if err := os.WriteFile(path, []byte(m.Automaton.DOT(c.Name)), 0o644); err != nil {
			return err
		}
		fmt.Printf("DOT written to %s\n", path)
	}
	return nil
}

func runTable1(fullTimeout time.Duration) error {
	fmt.Println("== Table I: segmented vs non-segmented model construction")
	fmt.Printf("%-16s %3s %8s %14s %14s\n", "Example", "N", "Len", "Full Trace", "Segmented")
	rows, err := experiments.Table1(experiments.Cases(), fullTimeout)
	if err != nil {
		return err
	}
	for _, r := range rows {
		full := r.FullTime.Round(time.Millisecond).String()
		if r.FullTimedOut {
			full = fmt.Sprintf(">%s (timeout)", fullTimeout)
		}
		fmt.Printf("%-16s %3d %8d %14s %14s\n",
			r.Name, r.States, r.TraceLen, full, r.SegmentedTime.Round(time.Millisecond))
	}
	return nil
}

func runTable2(mergeTimeout time.Duration) error {
	fmt.Println("== Table II: state merge vs model learning")
	fmt.Printf("%-16s %8s | %12s %10s | %12s %8s\n",
		"Example", "Len", "Merge time", "states", "Learn time", "states")
	rows, err := experiments.Table2(experiments.Cases(), mergeTimeout)
	if err != nil {
		return err
	}
	for _, r := range rows {
		mt := r.MergeTime.Round(time.Millisecond).String()
		ms := fmt.Sprintf("%d", r.MergeStates)
		if r.MergeTimedOut {
			mt = "timeout"
			ms = "no model"
		}
		fmt.Printf("%-16s %8d | %12s %10s | %12s %8d   (paper: %s vs %d)\n",
			r.Name, r.TraceLen, mt, ms,
			r.LearnTime.Round(time.Millisecond), r.LearnStates,
			r.PaperMergeStates, r.PaperLearnStates)
	}
	return nil
}

func runFig7(fullTimeout time.Duration, maxExp int) error {
	fmt.Println("== Fig 7: runtime vs trace length (integrator), log-log series")
	var lengths []int
	for k := 6; k <= maxExp; k++ {
		lengths = append(lengths, 1<<k)
	}
	points, err := experiments.Fig7(lengths, fullTimeout)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %16s %16s\n", "len", "segmented", "non-segmented")
	for _, p := range points {
		full := p.FullTime.Round(time.Millisecond).String()
		if p.FullTimedOut {
			full = "timeout"
		}
		fmt.Printf("%10d %16s %16s\n", p.TraceLen, p.SegmentedTime.Round(time.Millisecond), full)
	}
	return nil
}

func runAblationW() error {
	fmt.Println("== Ablation: segmentation window w (states must agree; §III-C)")
	c, err := experiments.CaseByName("Counter")
	if err != nil {
		return err
	}
	rows, err := experiments.AblationWindow(c, []int{2, 3, 4, 5, 6, 8}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %8s %10s %12s\n", "w", "states", "segments", "time")
	for _, r := range rows {
		fmt.Printf("%4d %8d %10d %12s\n", r.Window, r.States, r.Segments, r.Time.Round(time.Millisecond))
	}
	return nil
}

func runAblationL() error {
	fmt.Println("== Ablation: compliance length l (§III-C generalisation trade-off)")
	c, err := experiments.CaseByName("Counter")
	if err != nil {
		return err
	}
	rows, err := experiments.AblationCompliance(c, []int{1, 2, 3}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %8s %12s\n", "l", "states", "time")
	for _, r := range rows {
		fmt.Printf("%4d %8d %12s\n", r.L, r.States, r.Time.Round(time.Millisecond))
	}
	return nil
}

func runAblationSym() error {
	fmt.Println("== Ablation: state-ordering symmetry breaking (DESIGN.md §5 design choice)")
	// The four quick cases; rtlinux/integrator dominate on trace
	// generation rather than search and add little signal here.
	cases := experiments.Cases()[:4]
	rows, err := experiments.AblationSymmetry(cases, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %8s %12s %14s\n", "Example", "states", "with", "without")
	for _, r := range rows {
		fmt.Printf("%-16s %8d %12s %14s\n", r.Name, r.States,
			r.WithTime.Round(time.Millisecond), r.WithoutTime.Round(time.Millisecond))
	}
	return nil
}

func runSynthStyles() error {
	fmt.Println("== Synthesis styles (§VII): minimal enumerative CEGIS vs trivial ite chain")
	rows, err := experiments.SynthStyles()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-30s minimal: %-30s (size %2d)   trivial: %s (size %d)\n",
			r.Name, r.MinimalExpr, r.MinimalSize, r.TrivialExpr, r.TrivialSize)
	}
	return nil
}

func runProperties() error {
	fmt.Println("== Safety properties of learned models (paper conclusion: models as invariants)")
	rows, err := experiments.CheckProperties()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r.Describe())
	}
	return nil
}

func runInvariants() error {
	fmt.Println("== Candidate state invariants (paper conclusion: models as inductive invariants)")
	for _, name := range []string{"Counter", "Integrator"} {
		c, err := experiments.CaseByName(name)
		if err != nil {
			return err
		}
		tr, err := c.Generate()
		if err != nil {
			return err
		}
		p, err := repro.NewPipeline(tr.Schema(), c.Options)
		if err != nil {
			return err
		}
		m, err := p.Learn(tr)
		if err != nil {
			return err
		}
		invs, err := m.StateInvariants(tr, 4)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d states):\n", name, m.States)
		for _, inv := range invs {
			fmt.Printf("  q%d (visited %6d×): %s\n", inv.State+1, inv.Visits, inv.Expr)
		}
	}
	return nil
}

func runIngest() error {
	fmt.Println("== Ingestion: batch vs streaming (modular-counter CSV traces)")
	rows, err := experiments.RunIngest([]int{100_000, 1_000_000})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %12s %12s %12s %12s %7s %10s\n",
		"steps", "batch", "stream", "batch peak", "stream peak", "obs/s", "states", "identical")
	for _, r := range rows {
		fmt.Printf("%10d %12s %12s %11.1fM %11.1fM %12d %7d %10t\n",
			r.Steps,
			r.BatchWall.Round(time.Millisecond), r.StreamWall.Round(time.Millisecond),
			float64(r.BatchPeak)/1e6, float64(r.StreamPeak)/1e6,
			r.ObsPerSec, r.States, r.Identical)
	}
	return nil
}

func runSolve(solveOut string) error {
	fmt.Println("== Solver throughput: conflicts/sec on a PHP refutation and inside learning runs")
	rows, err := experiments.RunSolve()
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %8s %10s %12s %12s %12s %14s %7s\n",
		"workload", "status", "wall", "conflicts", "learned", "conflicts/s", "props/s", "states")
	for _, r := range rows {
		states := ""
		if r.States > 0 {
			states = fmt.Sprintf("%d", r.States)
		}
		fmt.Printf("%-22s %8s %8.0fms %12d %12d %12.0f %14.0f %7s\n",
			r.Name, r.Status, r.WallMS, r.Conflicts, r.Learned, r.ConflictsPS, r.PropsPS, states)
	}
	if solveOut != "" {
		if err := pipeline.AtomicWriteFile(solveOut, func(w io.Writer) error {
			return experiments.WriteSolveBench(w, rows)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", solveOut)
	}
	return nil
}

func runActive(activeOut string) error {
	fmt.Println("== Active probing: refinement from truncated seed traces")
	rows, err := experiments.RunActive()
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %10s %8s %11s %11s %7s %10s %10s\n",
		"system", "seed obs", "full obs", "rounds", "divergences", "stabilized", "states", "identical", "wall")
	for _, r := range rows {
		fmt.Printf("%10s %10d %10d %8d %11d %11t %7d %10t %9.0fms\n",
			r.System, r.SeedObs, r.FullObs, r.Rounds, r.Divergences,
			r.Stabilized, r.States, r.Identical, r.WallMS)
	}
	if activeOut != "" {
		if err := pipeline.AtomicWriteFile(activeOut, func(w io.Writer) error {
			return experiments.WriteActiveBench(w, rows)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", activeOut)
	}
	return nil
}

func runMemo(memoOut string) error {
	fmt.Println("== Synthesis cache: disabled vs cold vs warm vs shared vs corrupted")
	rows, err := experiments.RunMemo()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %2s %7s %10s %10s %10s %7s %6s %8s %10s\n",
		"example", "j", "states", "disabled", "cold", "warm", "stores", "hits", "corrupt", "identical")
	for _, r := range rows {
		identical := r.ColdIdentical && r.WarmIdentical && r.SharedIdentical && r.CorruptIdentical
		fmt.Printf("%-16s %2d %7d %8.0fms %8.0fms %8.0fms %7d %6d %8d %10t\n",
			r.Name, r.Workers, r.States, r.DisabledMS, r.ColdMS, r.WarmMS,
			r.ColdStores, r.WarmHits, r.CorruptDetected, identical)
	}
	if memoOut != "" {
		if err := pipeline.AtomicWriteFile(memoOut, func(w io.Writer) error {
			return experiments.WriteMemoBench(w, rows)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", memoOut)
	}
	return nil
}

func runCoverage() error {
	fmt.Println("== USB Slot coverage (§IV: unexercised datasheet transitions)")
	c, err := experiments.CaseByName("USB Slot")
	if err != nil {
		return err
	}
	m, err := experiments.LearnCase(c, 0)
	if err != nil {
		return err
	}
	rep := experiments.SlotCoverage(m)
	fmt.Printf("exercised: %s\n", strings.Join(rep.Exercised, ", "))
	fmt.Printf("missing:   %s\n", strings.Join(rep.Missing, ", "))
	return nil
}
