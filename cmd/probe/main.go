// Command probe runs the active conformance-probing loop against one
// of the simulated systems: learn a hypothesis from a deliberately
// truncated seed trace, then repeatedly drive the live system further
// than the hypothesis has seen, check conformance, fold diverging
// probes back through the learner, and stop when a full-budget probe
// conforms and the SAT engine finds no distinguishing word between the
// last two hypotheses (see internal/active).
//
// Usage:
//
//	probe -system counter|fifo|serial|usbslot [-seed N] [-truncate N]
//	      [-probe-cap N] [-depth D] [-rounds R] [-j N] [-portfolio N]
//	      [-save model.t2m] [-bench-out FILE] [-q]
//
// The default -truncate is a quarter of the system's canonical
// benchmark trace, so the first rounds normally surface divergences;
// -truncate 0 seeds from the full canonical trace (the fixpoint sanity
// check: one conforming round, no refinement).
//
// Exit status: 0 when the loop stabilized, 1 when the round budget ran
// out first, 2 on error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/runlog"
	"repro/internal/systems"
	"repro/internal/trace"
)

// usage is the synopsis printed by -h. TestUsageNamesEveryFlag asserts
// it names every registered flag.
const usage = `usage: probe -system counter|fifo|serial|usbslot [-seed N] [-truncate N]
             [-probe-cap N] [-depth D] [-rounds R] [-j N] [-portfolio N]
             [-synth-cache DIR] [-save model.t2m] [-bench-out FILE]
             [-run-log DIR] [-q]

`

// options carries every flag of one probe invocation.
type options struct {
	system    string
	seed      int64
	truncate  int
	probeCap  int
	depth     int
	rounds    int
	workers   int
	portfolio int
	save      string
	benchOut  string
	runLog    string
	quiet     bool

	synthCacheDir string
	scache        *repro.SynthCache
}

// declareFlags registers all flags on fs; split out so the usage smoke
// test can enumerate them against the synopsis above.
func declareFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.system, "system", "", "system to probe: "+strings.Join(systems.Names(), ", ")+" (required)")
	fs.Int64Var(&o.seed, "seed", 0, "workload schedule seed (0 = the system's default)")
	fs.IntVar(&o.truncate, "truncate", -1, "seed-trace length in observations (-1 = a quarter of the canonical trace, 0 = the full canonical trace)")
	fs.IntVar(&o.probeCap, "probe-cap", 0, "probe length budget in observations (0 = the canonical trace length)")
	fs.IntVar(&o.depth, "depth", 0, "distinguishing-word search depth between successive hypotheses (0 = default)")
	fs.IntVar(&o.rounds, "rounds", 0, "probe round budget (0 = default)")
	fs.IntVar(&o.workers, "j", 0, "predicate-synthesis / solver workers (0 = one per CPU, 1 = serial; results identical)")
	fs.IntVar(&o.portfolio, "portfolio", 0, "race this many SAT solver configurations per solve (0/1 = serial; results identical)")
	fs.StringVar(&o.save, "save", "", "save the stabilized model to this file (t2m format)")
	fs.StringVar(&o.benchOut, "bench-out", "", "write the run as a BENCH_active.json document to this file")
	fs.StringVar(&o.runLog, "run-log", "", "append this run's record to the run archive at this directory (see cmd/runstats)")
	fs.BoolVar(&o.quiet, "q", false, "suppress per-round output")
	fs.StringVar(&o.synthCacheDir, "synth-cache", "", "share synthesized window predicates across runs and rounds via this cache directory (identical models)")
	return o
}

func main() {
	o := declareFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usage)
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "probe:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(o *options) (int, error) {
	if o.system == "" {
		return 2, fmt.Errorf("-system is required (one of %s)", strings.Join(systems.Names(), ", "))
	}
	sys, err := systems.Open(o.system)
	if err != nil {
		return 2, err
	}
	n := systems.CanonicalObservations(o.system)
	if o.probeCap <= 0 {
		o.probeCap = n
	}
	switch {
	case o.truncate < 0:
		o.truncate = n / 4
	case o.truncate == 0:
		o.truncate = n
	}
	seed, err := systems.DriveSchedule(sys, o.seed, o.truncate)
	if err != nil {
		return 2, err
	}
	if o.synthCacheDir != "" {
		o.scache, err = repro.OpenSynthCache(o.synthCacheDir)
		if err != nil {
			return 2, err
		}
	}
	copts := core.Options{
		Predicate: predicate.Options{Workers: o.workers, Cache: o.scache},
		Learn:     learn.Options{Portfolio: o.portfolio, Workers: o.workers},
	}
	// The refinement loop's counters land in the run record, so a probe
	// run's residue (rounds, divergences, probe volume) is queryable
	// from the archive.
	if o.runLog != "" {
		copts.Telemetry = &pipeline.Telemetry{Registry: pipeline.NewRegistry()}
	}
	fmt.Printf("probe: %s: seed %d observations, probe budget %d\n", o.system, seed.Len(), o.probeCap)
	start := time.Now()
	res, err := active.Refine(sys, seed, copts, active.Options{
		Depth:     o.depth,
		MaxRounds: o.rounds,
		ProbeCap:  o.probeCap,
		Seed:      o.seed,
	})
	if err != nil {
		return 2, err
	}
	if err := writeRunRecord(o, copts.Telemetry, seed.Len(), res, time.Since(start)); err != nil {
		return 2, err
	}
	if !o.quiet {
		printRounds(res.Rounds)
	}
	if o.save != "" {
		if err := pipeline.AtomicWriteFile(o.save, func(w io.Writer) error {
			return repro.SaveModel(w, res.Model)
		}); err != nil {
			return 2, err
		}
	}
	if o.benchOut != "" {
		if err := writeBench(o, sys, seed.Len(), res); err != nil {
			return 2, err
		}
	}
	if !res.Stabilized {
		fmt.Printf("did not stabilize within %d rounds (%d states, final probe %d observations)\n",
			len(res.Rounds), res.Model.States, res.FinalProbeLen)
		return 1, nil
	}
	fmt.Printf("stabilized after %d rounds: %d states, final probe %d observations\n",
		len(res.Rounds), res.Model.States, res.FinalProbeLen)
	return 0, nil
}

// writeRunRecord archives the refinement run's outcome and loop
// counters; a no-op without -run-log.
func writeRunRecord(o *options, tel *pipeline.Telemetry, seedObs int, res *active.Result, elapsed time.Duration) error {
	if o.runLog == "" {
		return nil
	}
	store, err := runlog.Open(o.runLog)
	if err != nil {
		return err
	}
	verdict := runlog.VerdictOK
	if !res.Stabilized {
		verdict = runlog.VerdictDivergence
	}
	divergences := 0
	for _, r := range res.Rounds {
		if !r.Verdict.Conforms {
			divergences++
		}
	}
	rec := &runlog.Record{
		Version:   runlog.RecordVersion,
		Tool:      "probe",
		CreatedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Config: map[string]any{
			"system":    o.system,
			"seed":      o.seed,
			"truncate":  o.truncate,
			"probe_cap": o.probeCap,
			"depth":     o.depth,
			"rounds":    o.rounds,
			"workers":   o.workers,
			"portfolio": o.portfolio,
		},
		WallMS:  float64(elapsed.Microseconds()) / 1e3,
		Verdict: verdict,
		Model:   &pipeline.ModelManifest{States: res.Model.States},
		Metrics: map[string]float64{
			"rounds":          float64(len(res.Rounds)),
			"divergences":     float64(divergences),
			"seed_obs":        float64(seedObs),
			"final_probe_len": float64(res.FinalProbeLen),
		},
	}
	if tel != nil && tel.Registry != nil {
		rec.Counters = tel.Registry.CounterValues()
		rec.Histograms = tel.Registry.Summaries()
	}
	_, err = store.Put(rec)
	return err
}

// printRounds renders one line per probe round.
func printRounds(rounds []active.Round) {
	for _, r := range rounds {
		line := fmt.Sprintf("round %d: probe %d obs: %s", r.Round, r.ProbeLen, r.Verdict)
		if r.Relearned {
			line += fmt.Sprintf("; refined to %d states", r.States)
		}
		if r.Distinction != nil {
			line += fmt.Sprintf("; distinguishing word %v", r.Distinction.Word)
			if r.WitnessOutcome != "" {
				line += " (" + r.WitnessOutcome + " by the system)"
			}
		}
		fmt.Println(line)
	}
}

// writeBench records the run as a single-row BENCH_active.json
// document, including the comparison against the passively learned
// full-budget model.
func writeBench(o *options, sys systems.Scheduler, seedObs int, res *active.Result) error {
	full, err := systems.DriveSchedule(sys, o.seed, o.probeCap)
	if err != nil {
		return err
	}
	pl, err := core.NewPipeline(full.Schema(), core.Options{
		Predicate: predicate.Options{Workers: o.workers, Cache: o.scache},
		Learn:     learn.Options{Portfolio: o.portfolio, Workers: o.workers},
	})
	if err != nil {
		return err
	}
	passive, err := pl.LearnSource(trace.NewTraceSource(full))
	if err != nil {
		return err
	}
	var wall float64
	divergences := 0
	for _, r := range res.Rounds {
		wall += float64(r.Wall.Microseconds()) / 1e3
		if !r.Verdict.Conforms {
			divergences++
		}
	}
	row := experiments.ActiveRow{
		System:      o.system,
		SeedObs:     seedObs,
		FullObs:     o.probeCap,
		Rounds:      len(res.Rounds),
		Divergences: divergences,
		Stabilized:  res.Stabilized,
		States:      res.Model.States,
		Identical:   res.Model.Automaton.String() == passive.Automaton.String(),
		WallMS:      wall,
	}
	return pipeline.AtomicWriteFile(o.benchOut, func(w io.Writer) error {
		return experiments.WriteActiveBench(w, []experiments.ActiveRow{row})
	})
}
