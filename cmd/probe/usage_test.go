package main

import (
	"flag"
	"strings"
	"testing"
)

// TestUsageNamesEveryFlag pins the -h synopsis to the registered flag
// set: a flag added to declareFlags without a mention in usage (or
// vice versa, a synopsis entry for a removed flag) fails here instead
// of silently drifting.
func TestUsageNamesEveryFlag(t *testing.T) {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	declareFlags(fs)
	n := 0
	fs.VisitAll(func(f *flag.Flag) {
		n++
		if !strings.Contains(usage, "-"+f.Name) {
			t.Errorf("usage synopsis missing -%s", f.Name)
		}
	})
	if n == 0 {
		t.Fatal("declareFlags registered no flags")
	}
}
