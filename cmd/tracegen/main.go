// Command tracegen generates the benchmark traces of the paper's
// evaluation (Section IV) and writes them in the formats cmd/t2m
// consumes: CSV for traces with numeric variables, one event per line
// for event traces, and optionally a raw ftrace-style log for the
// Linux kernel benchmark.
//
// Usage:
//
//	tracegen -system usbslot|usbattach|counter|serial|rtlinux|integrator|fifo
//	         [-o FILE] [-n LENGTH] [-steps N] [-seed N] [-format csv|events|ftrace]
//
// With no -o the trace is written to stdout.
//
// For ingestion benchmarks and long workloads, -steps streams a trace
// of any length straight to the output without building it in memory:
// -system counter or serial -steps N emits an N-observation CSV by
// driving the system's workload schedule, and -system fifo -steps N
// emits an N-cycle FIFO-occupancy VCD. Streaming and batch modes agree
// byte for byte: for the same -system and -seed, -steps N output is a
// prefix of (or, at matching lengths, identical to) the batch output —
// pinned by this package's golden test.
//
// -seed selects the workload schedule seed for the randomised systems
// (serial, rtlinux); 0 keeps each system's default, so existing
// invocations reproduce the committed benchmark traces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/runlog"
	"repro/internal/systems/rtlinux"
	"repro/internal/systems/serial"
	"repro/internal/trace"
)

// usage is the synopsis printed by -h. TestUsageNamesEveryFlag asserts
// it names every registered flag, so it cannot drift the way the old
// hand-maintained synopsis did (which was missing -steps).
const usage = `usage: tracegen -system usbslot|usbattach|counter|serial|rtlinux|integrator|fifo
                [-o FILE] [-n LENGTH] [-steps N] [-seed N] [-format csv|events|ftrace]
                [-run-log DIR]

`

// options carries every flag of one tracegen invocation.
type options struct {
	system, out, format string
	length, steps       int
	seed                int64
	runLog              string
}

// declareFlags registers all flags on fs; split out so the usage smoke
// test can enumerate them against the synopsis above.
func declareFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.system, "system", "", "benchmark system: usbslot, usbattach, counter, serial, rtlinux, integrator, fifo")
	fs.StringVar(&o.out, "o", "", "output file (default stdout)")
	fs.IntVar(&o.length, "n", 0, "override trace length (0 = paper default; supported for counter, serial, rtlinux, integrator)")
	fs.StringVar(&o.format, "format", "", "output format: csv, events, ftrace (default by schema)")
	fs.IntVar(&o.steps, "steps", 0, "stream this many observations directly to the output (counter/serial: CSV, fifo: VCD); any length, O(1) memory")
	fs.Int64Var(&o.seed, "seed", 0, "workload schedule seed for the randomised systems (0 = each system's default); identical in batch and -steps modes")
	fs.StringVar(&o.runLog, "run-log", "", "append this generation's record (config, output digest, wall time) to the run archive at this directory (see cmd/runstats)")
	return o
}

func main() {
	o := declareFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usage)
		flag.PrintDefaults()
	}
	flag.Parse()
	start := time.Now()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := writeRunRecord(o, time.Since(start)); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// writeRunRecord archives the generation: its config, wall time and
// the digest of the produced trace, so downstream learning records can
// be joined back to the exact artifact they consumed. A no-op without
// -run-log.
func writeRunRecord(o *options, elapsed time.Duration) error {
	if o.runLog == "" {
		return nil
	}
	store, err := runlog.Open(o.runLog)
	if err != nil {
		return err
	}
	rec := &runlog.Record{
		Version:   runlog.RecordVersion,
		Tool:      "tracegen",
		CreatedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Config: map[string]any{
			"system": o.system,
			"format": o.format,
			"n":      o.length,
			"steps":  o.steps,
			"seed":   o.seed,
		},
		WallMS:  float64(elapsed.Microseconds()) / 1e3,
		Verdict: runlog.VerdictOK,
	}
	if o.out != "" && o.out != "-" {
		rec.Inputs = []pipeline.InputDigest{pipeline.FileDigest(o.out)}
	}
	_, err = store.Put(rec)
	return err
}

func run(o *options) error {
	system, out, length, format, steps := o.system, o.out, o.length, o.format, o.steps
	if steps > 0 || system == "fifo" {
		return runStream(system, out, format, steps, o.seed)
	}
	var (
		tr  *trace.Trace
		err error
	)
	switch system {
	case "usbslot":
		tr, err = experiments.GenUSBSlot()
	case "usbattach":
		tr, err = experiments.GenUSBAttach()
	case "counter":
		tr, err = experiments.GenCounter()
	case "serial":
		w := serial.DefaultWorkload()
		if length > 0 {
			w.Observations = length
		}
		if o.seed != 0 {
			w.Seed = o.seed
		}
		tr, err = w.Run()
	case "rtlinux":
		cfg := rtlinux.DefaultConfig()
		if length > 0 {
			cfg.Events = length
		}
		if o.seed != 0 {
			cfg.Seed = o.seed
		}
		sim, nerr := rtlinux.New(cfg)
		if nerr != nil {
			return nerr
		}
		tr, err = sim.Run()
		if err == nil && format == "ftrace" {
			return writeOut(out, func(w io.Writer) error {
				_, werr := io.WriteString(w, sim.FtraceLog())
				return werr
			})
		}
	case "integrator":
		if length > 0 {
			tr, err = experiments.GenIntegratorLen(length)
		} else {
			tr, err = experiments.GenIntegrator()
		}
	case "":
		return fmt.Errorf("missing -system (one of: usbslot, usbattach, counter, serial, rtlinux, integrator, fifo)")
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	if err != nil {
		return err
	}
	if length > 0 && tr.Len() > length {
		tr = tr.Slice(0, length)
	}

	if format == "" {
		if _, eerr := tr.Events(); eerr == nil && tr.Schema().Len() == 1 {
			format = "events"
		} else {
			format = "csv"
		}
	}
	switch format {
	case "csv":
		return writeOut(out, func(w io.Writer) error { return trace.WriteCSV(w, tr) })
	case "events":
		return writeOut(out, func(w io.Writer) error { return trace.WriteEvents(w, tr) })
	case "ftrace":
		return fmt.Errorf("-format ftrace is only supported with -system rtlinux")
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// runStream handles the direct-to-writer generators selected by
// -steps: traces of any length in O(1) memory. The CSV systems drive
// the same workload schedules the batch generators replay, so for a
// given -seed the streamed bytes are a prefix of the batch output.
func runStream(system, out, format string, steps int, seed int64) error {
	if steps <= 0 {
		steps = 10000
	}
	switch system {
	case "counter", "serial":
		if format != "" && format != "csv" {
			return fmt.Errorf("-steps with -system %s emits csv only", system)
		}
		return writeOut(out, func(w io.Writer) error {
			return experiments.StreamScheduleCSV(w, system, seed, steps)
		})
	case "fifo":
		if format != "" && format != "vcd" {
			return fmt.Errorf("-system fifo emits vcd only")
		}
		return writeOut(out, func(w io.Writer) error {
			return experiments.StreamFIFOVCD(w, steps, 4)
		})
	default:
		return fmt.Errorf("-steps supports -system counter, serial (csv) and fifo (vcd), not %q", system)
	}
}

// writeOut streams the generated trace to stdout or, for a file,
// writes it atomically so an interrupted generation never leaves a
// truncated trace behind.
func writeOut(path string, write func(io.Writer) error) error {
	if path == "" || path == "-" {
		return write(os.Stdout)
	}
	return pipeline.AtomicWriteFile(path, write)
}
