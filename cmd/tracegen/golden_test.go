package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// gen runs one tracegen invocation into a temp file and returns the
// bytes it wrote.
func gen(t *testing.T, o options) []byte {
	t.Helper()
	o.out = filepath.Join(t.TempDir(), "out")
	if err := run(&o); err != nil {
		t.Fatalf("tracegen %+v: %v", o, err)
	}
	data, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSeedModesByteIdentical is the seed-handling contract: for the
// same -system and -seed, batch mode and -steps streaming mode emit
// byte-identical output at matching lengths, and streaming output is a
// prefix of longer batch output.
func TestSeedModesByteIdentical(t *testing.T) {
	cases := []struct {
		name        string
		batch, strm options
	}{
		{
			name:  "counter",
			batch: options{system: "counter"},
			strm:  options{system: "counter", steps: 447},
		},
		{
			name:  "serial default seed",
			batch: options{system: "serial", length: 128},
			strm:  options{system: "serial", steps: 128},
		},
		{
			name:  "serial seed 7",
			batch: options{system: "serial", length: 64, seed: 7},
			strm:  options{system: "serial", steps: 64, seed: 7},
		},
		{
			name:  "serial seed 3",
			batch: options{system: "serial", length: 96, seed: 3},
			strm:  options{system: "serial", steps: 96, seed: 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := gen(t, tc.batch)
			s := gen(t, tc.strm)
			if !bytes.Equal(b, s) {
				t.Fatalf("batch and -steps output differ:\nbatch: %d bytes\nsteps: %d bytes", len(b), len(s))
			}
		})
	}

	// Different seeds must actually change the randomised workload.
	if bytes.Equal(
		gen(t, options{system: "serial", steps: 96, seed: 3}),
		gen(t, options{system: "serial", steps: 96, seed: 7}),
	) {
		t.Fatal("seeds 3 and 7 produced identical serial traces")
	}

	// Prefix monotonicity: a shorter stream is a byte prefix of a
	// longer batch run (same schedule, fewer rows).
	long := gen(t, options{system: "counter"})
	short := gen(t, options{system: "counter", steps: 100})
	if !bytes.HasPrefix(long, short) {
		t.Fatal("streamed counter output is not a prefix of the batch output")
	}
}

// TestGolden pins the exact bytes both modes produce against committed
// golden files, so seed handling (and the CSV encoding) cannot drift
// silently in either path.
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		opts   []options // every invocation that must reproduce it
	}{
		{
			golden: "testdata/counter_447.csv",
			opts: []options{
				{system: "counter"},
				{system: "counter", steps: 447},
			},
		},
		{
			golden: "testdata/serial_seed7_64.csv",
			opts: []options{
				{system: "serial", length: 64, seed: 7},
				{system: "serial", steps: 64, seed: 7},
			},
		},
	}
	for _, tc := range cases {
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range tc.opts {
			if got := gen(t, o); !bytes.Equal(got, want) {
				t.Errorf("%+v does not reproduce %s (%d bytes, want %d)", o, tc.golden, len(got), len(want))
			}
		}
	}
}
