package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runlog"
)

// TestUsageNamesEveryFlag pins the -h synopsis to the registered flag
// sets — global and per-subcommand — so neither can drift.
func TestUsageNamesEveryFlag(t *testing.T) {
	sets := map[string]func(*flag.FlagSet){
		"global":  func(fs *flag.FlagSet) { declareFlags(fs) },
		"list":    func(fs *flag.FlagSet) { listFlags(fs) },
		"compare": func(fs *flag.FlagSet) { compareFlags(fs) },
		"regress": func(fs *flag.FlagSet) { regressFlags(fs) },
		"import":  func(fs *flag.FlagSet) { importFlags(fs) },
	}
	n := 0
	for name, declare := range sets {
		fs := flag.NewFlagSet(name, flag.ContinueOnError)
		declare(fs)
		fs.VisitAll(func(f *flag.Flag) {
			n++
			if !strings.Contains(usage, "-"+f.Name) {
				t.Errorf("usage synopsis missing -%s (%s)", f.Name, name)
			}
		})
	}
	if n == 0 {
		t.Fatal("no flags registered")
	}
	for _, cmd := range []string{"list", "show", "compare", "regress", "import"} {
		if !strings.Contains(usage, cmd) {
			t.Errorf("usage synopsis missing command %s", cmd)
		}
	}
}

// writeBench writes a small BENCH-style JSON document.
func writeBench(t *testing.T, dir, name string, wallA, wallB float64) string {
	t.Helper()
	doc := map[string]any{
		"benchmark": "test",
		"results": []map[string]any{
			{"name": "alpha", "wall_ms": wallA, "conflicts": 100},
			{"name": "beta", "wall_ms": wallB},
		},
	}
	data, _ := json.Marshal(doc)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunstatsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(dir, "runs")
	o := &options{runLog: archive}
	var out strings.Builder

	exec := func(args ...string) (int, string) {
		t.Helper()
		out.Reset()
		code, err := run(o, args, &out)
		if err != nil {
			t.Fatalf("runstats %v: %v", args, err)
		}
		return code, out.String()
	}

	// Import a baseline (backdated), a matching fresh run, then a
	// regressed run; the regress verdict must flip from ok to FAIL.
	b1 := writeBench(t, dir, "base.json", 100, 200)
	if code, _ := exec("import", "-stamp", "2026-01-01T00:00:00Z", b1); code != 0 {
		t.Fatal("import baseline failed")
	}
	if code, _ := exec("import", "-stamp", "2026-01-02T00:00:00Z", b1); code != 0 {
		t.Fatal("import second baseline failed")
	}
	same := writeBench(t, dir, "same.json", 101, 199)
	if code, _ := exec("import", "-stamp", "2026-01-03T00:00:00Z", same); code != 0 {
		t.Fatal("import candidate failed")
	}
	// Two baseline runs are below the default -min-runs 3: skipped
	// with an insufficient-history verdict, not judged (exit 0).
	code, body := exec("regress")
	if code != 0 {
		t.Fatalf("short-history regress exited %d:\n%s", code, body)
	}
	if !strings.Contains(body, "skip  alpha") || !strings.Contains(body, "insufficient history") {
		t.Fatalf("short-history regress output:\n%s", body)
	}

	// -min-runs 2 opts in to the short history: judged, clean.
	code, body = exec("regress", "-min-runs", "2")
	if code != 0 {
		t.Fatalf("clean regress exited %d:\n%s", code, body)
	}
	if !strings.Contains(body, "ok    alpha") || strings.Contains(body, "FAIL") {
		t.Fatalf("clean regress output:\n%s", body)
	}

	// Deterministic: same archive, same report.
	_, body2 := exec("regress", "-min-runs", "2")
	if body != body2 {
		t.Fatal("regress over the same archive produced different reports")
	}

	// Injected 30% regression on alpha.
	regressed := writeBench(t, dir, "slow.json", 130, 200)
	if code, _ := exec("import", "-stamp", "2026-01-04T00:00:00Z", regressed); code != 0 {
		t.Fatal("import regressed failed")
	}
	code, body = exec("regress")
	if code != 1 {
		t.Fatalf("regressed archive exited %d, want 1:\n%s", code, body)
	}
	if !strings.Contains(body, "FAIL  alpha") {
		t.Fatalf("regress did not flag alpha:\n%s", body)
	}

	// JSON mode parses and carries the same verdict.
	code, body = exec("regress", "-json")
	if code != 1 {
		t.Fatalf("json regress exited %d", code)
	}
	var results []runlog.RegressResult
	if err := json.Unmarshal([]byte(body), &results); err != nil {
		t.Fatalf("regress -json invalid: %v\n%s", err, body)
	}

	// min-wall filtering skips everything → exit 0.
	if code, _ = exec("regress", "-min-wall", "10000"); code != 0 {
		t.Fatalf("all-skipped regress exited %d", code)
	}

	// list shows the archived records; -tool and -n filter.
	_, body = exec("list")
	if !strings.Contains(body, "alpha") || !strings.Contains(body, "bench") {
		t.Fatalf("list output:\n%s", body)
	}
	lines := strings.Count(body, "\n")
	_, bodyN := exec("list", "-n", "2")
	if got := strings.Count(bodyN, "\n"); got >= lines {
		t.Fatalf("list -n 2 did not shrink output (%d vs %d lines)", got, lines)
	}
	if _, body = exec("list", "-tool", "nosuch"); strings.Contains(body, "alpha") {
		t.Fatalf("list -tool filter leaked rows:\n%s", body)
	}

	// show + compare round-trip through digests from the store.
	store, err := runlog.Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	var alphas []runlog.Entry
	for _, e := range entries {
		if e.Record.Name() == "alpha" {
			alphas = append(alphas, e)
		}
	}
	if len(alphas) < 2 {
		t.Fatalf("want ≥2 alpha records, got %d", len(alphas))
	}
	code, body = exec("show", alphas[0].Digest[:10])
	if code != 0 {
		t.Fatal("show failed")
	}
	var rec runlog.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("show output not a record: %v", err)
	}
	code, body = exec("compare", alphas[0].Digest[:10], alphas[len(alphas)-1].Digest[:10])
	if code != 0 || !strings.Contains(body, "wall_ms") {
		t.Fatalf("compare output (code %d):\n%s", code, body)
	}
	code, body = exec("compare", "-json", alphas[0].Digest[:10], alphas[len(alphas)-1].Digest[:10])
	var deltas []runlog.Delta
	if code != 0 || json.Unmarshal([]byte(body), &deltas) != nil {
		t.Fatalf("compare -json output (code %d):\n%s", code, body)
	}
}

func TestRunstatsErrors(t *testing.T) {
	var out strings.Builder
	if code, err := run(&options{}, []string{"list"}, &out); err == nil || code != 2 {
		t.Error("missing -run-log not rejected")
	}
	o := &options{runLog: t.TempDir()}
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"show"},
		{"show", "ffff"},
		{"compare", "onlyone"},
		{"import"},
		{"import", "-stamp", "not-a-time", "x"},
		{"import", filepath.Join(t.TempDir(), "absent.json")},
	} {
		if code, err := run(o, args, &out); err == nil || code != 2 {
			t.Errorf("args %v: code %d, err %v; want error", args, code, err)
		}
	}
	// go-bench text import path.
	dir := t.TempDir()
	txt := filepath.Join(dir, "bench.txt")
	os.WriteFile(txt, []byte("BenchmarkFoo-8  10  12345678 ns/op\n"), 0o644)
	if code, err := run(o, []string{"import", "-stamp", time.Now().UTC().Format(time.RFC3339), txt}, &out); err != nil || code != 0 {
		t.Errorf("text import: code %d err %v", code, err)
	}
}
