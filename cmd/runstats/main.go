// Command runstats queries the run archive that every other command
// appends to via -run-log (see internal/runlog): list the archived
// runs, inspect one, diff two, import benchmark artifacts, and — the
// CI gate — judge the newest run of each workload against the robust
// statistics of its own history.
//
// Usage:
//
//	runstats -run-log DIR list [-tool NAME] [-n N]
//	runstats -run-log DIR show DIGEST
//	runstats -run-log DIR compare DIGEST_A DIGEST_B [-json]
//	runstats -run-log DIR regress [-window N] [-threshold F]
//	         [-min-wall MS] [-min-runs N] [-json]
//	runstats -run-log DIR import [-stamp RFC3339] FILE...
//
// regress compares each workload's newest run against the median of
// its last -window runs, allowing -threshold relative slowdown plus a
// MAD-scaled noise envelope; it exits 1 when any workload regressed,
// so it can gate CI directly. import accepts BENCH_*.json documents
// and raw `go test -bench` output; -stamp backdates imported records
// (CI stamps checked-in baselines old and fresh runs new, making
// which-is-candidate explicit).
//
// Exit status: 0 ok, 1 regression detected, 2 on error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/runlog"
)

// usage is the synopsis printed by -h. TestUsageNamesEveryFlag asserts
// it names every registered flag of every subcommand.
const usage = `usage: runstats -run-log DIR list [-tool NAME] [-n N]
       runstats -run-log DIR show DIGEST
       runstats -run-log DIR compare DIGEST_A DIGEST_B [-json]
       runstats -run-log DIR regress [-window N] [-threshold F]
                [-min-wall MS] [-min-runs N] [-json]
       runstats -run-log DIR import [-stamp RFC3339] FILE...

`

// options carries the global flags of one runstats invocation.
type options struct {
	runLog string
}

// declareFlags registers the global flags on fs; split out so the
// usage smoke test can enumerate them against the synopsis above.
func declareFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.runLog, "run-log", "", "run archive directory (required; the directory other commands' -run-log points at)")
	return o
}

// listFlags / compareFlags / regressFlags / importFlags build each
// subcommand's flag set. Split out for the usage smoke test.
func listFlags(fs *flag.FlagSet) (tool *string, n *int) {
	return fs.String("tool", "", "only list runs of this tool"),
		fs.Int("n", 0, "only list the newest N runs (0 = all)")
}

func compareFlags(fs *flag.FlagSet) (asJSON *bool) {
	return fs.Bool("json", false, "emit the comparison as JSON")
}

func regressFlags(fs *flag.FlagSet) (window, minRuns *int, threshold, minWall *float64, asJSON *bool) {
	return fs.Int("window", 10, "baseline runs per workload"),
		fs.Int("min-runs", 3, "minimum baseline runs before a workload is judged (shorter histories skip with an insufficient-history verdict; below 3 the MAD envelope is degenerate)"),
		fs.Float64("threshold", 0.25, "relative slowdown flagged as a regression"),
		fs.Float64("min-wall", 0, "skip workloads whose baseline median wall time (ms) is below this"),
		fs.Bool("json", false, "emit the verdicts as JSON")
}

func importFlags(fs *flag.FlagSet) (stamp *string) {
	return fs.String("stamp", "", "created_at stamp (RFC3339) for imported records (default: now)")
}

func main() {
	o := declareFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usage)
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(o, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runstats:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(o *options, args []string, w io.Writer) (int, error) {
	if o.runLog == "" {
		return 2, fmt.Errorf("-run-log is required")
	}
	if len(args) == 0 {
		return 2, fmt.Errorf("missing command (list, show, compare, regress, import)")
	}
	store, err := runlog.Open(o.runLog)
	if err != nil {
		return 2, err
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(store, rest, w)
	case "show":
		return runShow(store, rest, w)
	case "compare":
		return runCompare(store, rest, w)
	case "regress":
		return runRegress(store, rest, w)
	case "import":
		return runImport(store, rest, w)
	default:
		return 2, fmt.Errorf("unknown command %q (list, show, compare, regress, import)", cmd)
	}
}

func runList(store *runlog.Store, args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	tool, n := listFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	entries, corrupt, err := store.List()
	if err != nil {
		return 2, err
	}
	if *tool != "" {
		kept := entries[:0]
		for _, e := range entries {
			if e.Record.Tool == *tool {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if *n > 0 && len(entries) > *n {
		entries = entries[len(entries)-*n:]
	}
	fmt.Fprintf(w, "%-12s  %-25s  %-8s  %-32s  %10s  %s\n", "DIGEST", "CREATED", "TOOL", "NAME", "WALL_MS", "VERDICT")
	for _, e := range entries {
		fmt.Fprintf(w, "%-12s  %-25s  %-8s  %-32s  %10.2f  %s\n",
			e.Digest[:12], e.Record.CreatedAt, e.Record.Tool, trunc(e.Record.Name(), 32), e.Record.WallMS, e.Record.Verdict)
	}
	if corrupt > 0 {
		fmt.Fprintf(w, "(%d corrupt record(s) skipped)\n", corrupt)
	}
	return 0, nil
}

func runShow(store *runlog.Store, args []string, w io.Writer) (int, error) {
	if len(args) != 1 {
		return 2, fmt.Errorf("show wants exactly one digest prefix")
	}
	e, err := store.Get(args[0])
	if err != nil {
		return 2, err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.Record); err != nil {
		return 2, err
	}
	return 0, nil
}

func runCompare(store *runlog.Store, args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	asJSON := compareFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("compare wants two digest prefixes")
	}
	a, err := store.Get(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	b, err := store.Get(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	deltas := runlog.Compare(a.Record, b.Record)
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(deltas); err != nil {
			return 2, err
		}
		return 0, nil
	}
	fmt.Fprintf(w, "A: %s  %s (%s)\nB: %s  %s (%s)\n",
		a.Digest[:12], a.Record.Name(), a.Record.CreatedAt,
		b.Digest[:12], b.Record.Name(), b.Record.CreatedAt)
	fmt.Fprintf(w, "%-36s  %14s  %14s  %8s\n", "KEY", "A", "B", "DELTA")
	for _, d := range deltas {
		fmt.Fprintf(w, "%-36s  %14.3f  %14.3f  %+7.1f%%\n", trunc(d.Key, 36), d.A, d.B, d.Pct)
	}
	return 0, nil
}

func runRegress(store *runlog.Store, args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	window, minRuns, threshold, minWall, asJSON := regressFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	entries, corrupt, err := store.List()
	if err != nil {
		return 2, err
	}
	results := runlog.Regress(entries, runlog.RegressOptions{
		Window:      *window,
		Threshold:   *threshold,
		MinWallMS:   *minWall,
		MinBaseline: *minRuns,
	})
	regressed := 0
	for _, r := range results {
		if r.Regressed {
			regressed++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return 2, err
		}
	} else {
		for _, r := range results {
			switch {
			case r.Skipped:
				fmt.Fprintf(w, "skip  %-32s  %s\n", trunc(r.Name, 32), r.Reason)
			case r.Regressed:
				fmt.Fprintf(w, "FAIL  %-32s  %.2fms vs baseline median %.2fms (limit %.2fms, n=%d, mad=%.2f)\n",
					trunc(r.Name, 32), r.CandidateWallMS, r.BaselineMedianMS, r.LimitMS, r.BaselineN, r.BaselineMADMS)
			default:
				fmt.Fprintf(w, "ok    %-32s  %.2fms vs baseline median %.2fms (limit %.2fms, n=%d)\n",
					trunc(r.Name, 32), r.CandidateWallMS, r.BaselineMedianMS, r.LimitMS, r.BaselineN)
			}
		}
		fmt.Fprintf(w, "%d workload(s), %d regressed", len(results), regressed)
		if corrupt > 0 {
			fmt.Fprintf(w, ", %d corrupt record(s) skipped", corrupt)
		}
		fmt.Fprintln(w)
	}
	if regressed > 0 {
		return 1, nil
	}
	return 0, nil
}

func runImport(store *runlog.Store, args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	stampFlag := importFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() == 0 {
		return 2, fmt.Errorf("import wants at least one benchmark file")
	}
	stamp := time.Now().UTC()
	if *stampFlag != "" {
		t, err := time.Parse(time.RFC3339, *stampFlag)
		if err != nil {
			return 2, fmt.Errorf("-stamp: %w", err)
		}
		stamp = t
	}
	total := 0
	for fi, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return 2, err
		}
		// Offset per file so rows from different files never collide on
		// a stamp while preserving file order.
		recs, err := runlog.ImportBench(data, stamp.Add(time.Duration(fi)*time.Second))
		if err != nil {
			return 2, fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range recs {
			if _, err := store.Put(r); err != nil {
				return 2, fmt.Errorf("%s: %w", path, err)
			}
		}
		fmt.Fprintf(w, "%s: imported %d record(s)\n", path, len(recs))
		total += len(recs)
	}
	fmt.Fprintf(w, "%d record(s) archived in %s\n", total, store.Dir())
	return 0, nil
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
