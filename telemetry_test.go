package repro_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/expr"
	"repro/internal/trace"
)

// updownTrace builds a small up-down counter trace: x climbs 0..4 and
// back, n observations. Two alternating predicates, so the run
// exercises window synthesis, memoisation, RLE and the solver.
func updownTrace(n int) *trace.Trace {
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	tr := trace.New(schema)
	x, dir := int64(0), int64(1)
	for i := 0; i < n; i++ {
		tr.MustAppend(trace.Observation{expr.IntVal(x)})
		if x == 4 {
			dir = -1
		} else if x == 0 {
			dir = 1
		}
		x += dir
	}
	return tr
}

// TestTelemetryEndToEnd drives a real learn with every telemetry
// consumer attached — NDJSON tracer, registry, live HTTP endpoint —
// then checks the trace parses, the endpoints serve, and the manifest
// round-trips through its schema check.
func TestTelemetryEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	tel := &repro.Telemetry{Tracer: repro.NewTracer(&buf), Registry: repro.NewRegistry()}
	srv, err := repro.ServeMetrics("127.0.0.1:0", tel.Registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	model, err := repro.Learn(updownTrace(200), repro.LearnOptions{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	// NDJSON trace: every line is JSON, spans balance, and the span
	// hierarchy's names all appear.
	starts, ends := map[float64]bool{}, 0
	names := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		switch ev["t"] {
		case "start":
			starts[ev["id"].(float64)] = true
			names[ev["name"].(string)] = true
		case "end":
			if !starts[ev["id"].(float64)] {
				t.Errorf("end for unknown span id %v", ev["id"])
			}
			ends++
		}
	}
	if len(starts) == 0 || ends != len(starts) {
		t.Errorf("spans: %d starts, %d ends", len(starts), ends)
	}
	for _, want := range []string{"run", "predicate", "model", "window", "solve"} {
		if !names[want] {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}

	// Live endpoints: all three routes serve.
	for path, want := range map[string]string{
		"/metrics":      "predicate_windows_total",
		"/metrics.json": `"counters"`,
		"/debug/pprof/": "profile",
	} {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}

	// Manifest: assemble as cmd/t2m does, round-trip through the
	// schema-checking reader.
	man := model.BuildManifest(tel)
	man.Tool = "test"
	man.CreatedAt = "2026-01-01T00:00:00Z"
	var mb bytes.Buffer
	if err := man.Write(&mb); err != nil {
		t.Fatal(err)
	}
	got, err := repro.ReadManifest(&mb)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model == nil || got.Model.States != model.States {
		t.Errorf("manifest model = %+v, want %d states", got.Model, model.States)
	}
	if got.Counters["predicate_windows_total"] <= 0 {
		t.Errorf("manifest counters = %v, want predicate_windows_total > 0", got.Counters)
	}
	if got.Counters["solver_calls_total"] <= 0 {
		t.Errorf("manifest counters = %v, want solver_calls_total > 0", got.Counters)
	}
	h, ok := got.Histograms["solver_call_ns"]
	if !ok || h.Count <= 0 || h.P95 < h.P50 {
		t.Errorf("manifest solver_call_ns summary = %+v", h)
	}
	if _, ok := got.Histograms["predicate_window_synth_ns"]; !ok {
		t.Errorf("manifest missing predicate_window_synth_ns histogram (got %v)", got.Histograms)
	}
}

// TestExampleManifestParses pins the checked-in example artifact: it
// must keep passing the schema check ReadManifest applies.
func TestExampleManifestParses(t *testing.T) {
	f, err := os.Open(filepath.Join("examples", "counter.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	man, err := repro.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if man.Tool != "t2m" || man.Model == nil || man.Model.States == 0 {
		t.Errorf("example manifest: tool=%q model=%+v", man.Tool, man.Model)
	}
}

// TestTelemetryDeterminism pins the telemetry guarantee: attaching a
// tracer and registry never changes the learned model.
func TestTelemetryDeterminism(t *testing.T) {
	plain, err := repro.Learn(updownTrace(200), repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tel := &repro.Telemetry{Tracer: repro.NewTracer(io.Discard), Registry: repro.NewRegistry()}
	traced, err := repro.Learn(updownTrace(200), repro.LearnOptions{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Automaton.String() != traced.Automaton.String() {
		t.Errorf("telemetry changed the model:\nplain:\n%s\ntraced:\n%s",
			plain.Automaton.String(), traced.Automaton.String())
	}
}
