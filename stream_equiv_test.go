package repro_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// openExampleSource opens one trace under examples/traces as a
// streaming source. The returned closer releases the file.
func openExampleSource(t *testing.T, path string) (repro.Source, func()) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var src repro.Source
	switch filepath.Ext(path) {
	case ".csv":
		src, err = repro.NewCSVSource(f)
	case ".vcd":
		src, err = repro.NewVCDSource(f, nil)
	default:
		src = repro.NewEventsSource(f)
	}
	if err != nil {
		f.Close()
		t.Fatalf("opening %s: %v", path, err)
	}
	return src, func() { f.Close() }
}

// TestStreamingMatchesBatchGolden is the ISSUE's equivalence
// criterion: for every example trace, learning from the streaming
// source must produce an automaton byte-identical to the batch path's
// (same String() rendering: states, transitions, start state), at
// worker counts 1 and 4. The batch side reuses the golden corpus so a
// divergence pinpoints which path moved.
func TestStreamingMatchesBatchGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "traces", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no traces under examples/traces")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				opts := repro.LearnOptions{Workers: workers}

				tr := readExampleTrace(t, path)
				batch, err := repro.Learn(tr, opts)
				if err != nil {
					t.Fatalf("batch learn: %v", err)
				}

				src, closeSrc := openExampleSource(t, path)
				defer closeSrc()
				stream, err := repro.LearnSource(src, opts)
				if err != nil {
					t.Fatalf("streaming learn: %v", err)
				}

				if bs, ss := batch.Automaton.String(), stream.Automaton.String(); bs != ss {
					t.Errorf("streaming automaton diverged from batch:\nbatch:\n%s\nstream:\n%s", bs, ss)
				}
				if batch.States != stream.States {
					t.Errorf("states: batch %d, stream %d", batch.States, stream.States)
				}
				if stream.P != nil {
					t.Errorf("streaming model materialised P (%d symbols); it must stay nil", len(stream.P))
				}
			})
		}
	}
}

// TestStreamingBoundedMemory learns a one-million-step counter trace
// through the streaming path and asserts the peak live heap stays
// under a ceiling an order of magnitude below what the batch path
// needs for the same trace (~155 MB measured; see EXPERIMENTS.md).
// The trace bytes are generated up front (~1.9 MB, part of the live
// set) so the measurement covers decode + windowing + learning only.
func TestStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-step trace; skipped with -short")
	}
	const steps = 1_000_000
	const ceiling = 48 << 20 // bytes

	var buf bytes.Buffer
	if err := experiments.StreamCounterCSV(&buf, steps, 8); err != nil {
		t.Fatal(err)
	}

	hs := pipeline.StartHeapSampler(time.Millisecond)
	src, err := trace.NewCSVSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.LearnSource(src, repro.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peak := hs.Stop()

	if m.States == 0 {
		t.Fatal("no states learned")
	}
	var obs int64
	for _, st := range m.Stages {
		if st.Name == "predicate" {
			obs = st.Counter("observations")
		}
	}
	if obs != steps {
		t.Errorf("observations counter = %d, want %d", obs, steps)
	}
	if peak > ceiling {
		t.Errorf("peak live heap %d bytes (%.1f MB) exceeds the %d MB streaming ceiling",
			peak, float64(peak)/(1<<20), ceiling>>20)
	}
	t.Logf("peak live heap %.1f MB for %d observations (%d states)",
		float64(peak)/(1<<20), steps, m.States)
}
