// Kernel monitor: learn a model of RT-Linux thread scheduling from an
// ftrace log and use it as a runtime monitor for fresh traces — the
// application that motivates the paper's Linux benchmark (de Oliveira
// et al. use hand-drawn kernel models as monitors; here the model is
// learned instead).
//
// The example learns from a baseline run *without* the corner-case
// kernel module, then monitors a run *with* it: the aborted-sleep path
// (set_state_runnable) is behaviour the model has never seen, and the
// monitor flags it — which is exactly how a coverage gap (or a
// regression) surfaces in practice.
//
// Run with:
//
//	go run ./examples/kernelmonitor
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/systems/rtlinux"
	"repro/internal/trace"
)

func main() {
	// 1. Record a baseline ftrace log (pi_stress load only).
	base := rtlinux.DefaultConfig()
	base.Events = 4000
	base.CornerModule = false
	baseSim, err := rtlinux.New(base)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := baseSim.Run(); err != nil {
		log.Fatal(err)
	}

	// 2. Parse the log the way the paper's tooling parses real
	// ftrace output, projecting onto the thread under analysis.
	events, err := trace.ParseFtrace(strings.NewReader(baseSim.FtraceLog()))
	if err != nil {
		log.Fatal(err)
	}
	baseTrace := trace.FtraceToTrace(events, baseSim.MonitoredTask(), nil)

	// 3. Learn the scheduling model.
	pipeline, err := repro.NewPipeline(baseTrace.Schema(), repro.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	model, err := pipeline.Learn(baseTrace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d-state scheduling model from %d events\n\n", model.States, baseTrace.Len())
	fmt.Print(model.Automaton.String())

	// 4. Monitor a fresh run that includes the corner-case module.
	probe := rtlinux.DefaultConfig()
	probe.Events = 4000
	probe.Seed = 99
	probeSim, err := rtlinux.New(probe)
	if err != nil {
		log.Fatal(err)
	}
	probeTrace, err := probeSim.Run()
	if err != nil {
		log.Fatal(err)
	}
	violation, err := model.Check(probeTrace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmonitoring a run with the corner-case module enabled:")
	if violation == nil {
		fmt.Println("  no violations — the model explains the whole trace")
		return
	}
	fmt.Printf("  %v\n", violation)
	fmt.Println("  → the baseline load never exercised this path; extend the test")
	fmt.Println("    suite (or flag the regression). The paper reached full model")
	fmt.Println("    coverage only after adding an extra kernel module (Section IV).")
}
