// VCD waveform: learn a model straight from a hardware simulator's
// value change dump. The example synthesises a small waveform — the
// occupancy counter of a FIFO with correlated valid/ready handshakes —
// renders it as IEEE 1364 VCD text, samples it back through the VCD
// reader, and learns an automaton whose predicates describe the
// handshake/occupancy dynamics.
//
// Run with:
//
//	go run ./examples/vcdwaveform
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
	"repro/internal/trace"
)

// dumpVCD renders the simulated FIFO waveform as VCD text.
func dumpVCD() string {
	var b strings.Builder
	b.WriteString("$date synthetic $end\n")
	b.WriteString("$version repro examples/vcdwaveform $end\n")
	b.WriteString("$timescale 1ns $end\n")
	b.WriteString("$scope module top $end\n")
	b.WriteString("$var wire 1 v valid $end\n")
	b.WriteString("$var wire 1 r ready $end\n")
	b.WriteString("$scope module fifo $end\n")
	b.WriteString("$var reg 4 c occupancy [3:0] $end\n")
	b.WriteString("$upscope $end\n$upscope $end\n")
	b.WriteString("$enddefinitions $end\n")
	b.WriteString("$dumpvars\n0v\n0r\nb0000 c\n$end\n")

	rng := rand.New(rand.NewSource(5))
	occ := 0
	bits := func(n int) string {
		s := ""
		for k := 3; k >= 0; k-- {
			if n&(1<<k) != 0 {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	// Bursty traffic phases, as a producer/consumer test bench
	// generates: a push burst (valid only), a streaming phase (both
	// high, occupancy steady), a pop burst (ready only), then an
	// idle gap — cycled, with jittered burst lengths.
	phases := []struct{ valid, ready bool }{
		{true, false}, {true, true}, {false, true}, {false, false},
	}
	// Alignment matters: each timestamp carries this cycle's inputs
	// together with the occupancy *before* they take effect, so a
	// step pair exposes occ' as a function of the current
	// observation (occ' = occ + valid − ready), exactly like the
	// paper's integrator trace pairs (ip, op).
	t := 1
	prevOcc := -1
	for t <= 400 {
		ph := phases[(t/8)%len(phases)]
		run := 2 + rng.Intn(5)
		for i := 0; i < run && t <= 400; i++ {
			valid := ph.valid && occ < 8
			ready := ph.ready && occ > 0
			fmt.Fprintf(&b, "#%d\n", t*10)
			fmt.Fprintf(&b, "%dv\n", boolBit(valid))
			fmt.Fprintf(&b, "%dr\n", boolBit(ready))
			if occ != prevOcc {
				fmt.Fprintf(&b, "b%s c\n", bits(occ))
				prevOcc = occ
			}
			if valid {
				occ++
			}
			if ready {
				occ--
			}
			t++
		}
	}
	return b.String()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func main() {
	vcd := dumpVCD()
	fmt.Printf("waveform: %d bytes of VCD\n", len(vcd))

	// List declared signals, then sample the ones we care about.
	sigs, err := trace.VCDSignals(strings.NewReader(vcd))
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sigs {
		fmt.Printf("  signal %-20s width %d\n", s.Name, s.Width)
	}
	tr, err := trace.ReadVCD(strings.NewReader(vcd), []string{"valid", "ready", "occupancy"})
	if err != nil {
		log.Fatal(err)
	}
	// valid and ready are environment-driven handshake inputs: mark
	// them so learned predicates guard on them instead of trying to
	// model their next values.
	tr, err = tr.WithRoles(map[string]trace.Role{
		"top.valid": trace.Input,
		"top.ready": trace.Input,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d observations of (valid, ready, occupancy)\n\n", tr.Len())

	model, err := repro.Learn(tr, repro.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d-state model; predicates:\n", model.States)
	for _, sym := range model.Automaton.Symbols() {
		fmt.Println(" ", sym)
	}
}
