// Integrator: learn a model with synthesized numeric transition
// predicates — the paper's Fig 4 benchmark. This example shows the
// pipeline discovering update functions (op' = op + ip) and saturation
// behaviour that are nowhere explicit in the trace, and the input/state
// variable roles of the trace schema.
//
// Run with:
//
//	go run ./examples/integrator
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/systems/integrator"
)

func main() {
	// Simulate the anti-windup integrator of the paper: output op
	// accumulates input ip ∈ {-1, 0, 1} and saturates at ±5. The
	// schema declares ip with the Input role, so learned predicates
	// may guard on it but never constrain ip'.
	cfg := integrator.DefaultConfig()
	cfg.Observations = 4096
	tr, err := cfg.Run()
	if err != nil {
		log.Fatal(err)
	}

	model, err := repro.Learn(tr, repro.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace: %d observations of (ip, op)\n", tr.Len())
	fmt.Printf("learned %d-state model with %d synthesized predicates:\n\n",
		model.States, len(model.Alphabet))
	for _, sym := range model.Automaton.Symbols() {
		fmt.Println(" ", sym)
	}
	fmt.Println()
	fmt.Print(model.Automaton.String())

	// Every predicate is backed by a witness step of the trace.
	witnesses, err := model.Explain(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwitness steps:")
	for _, sym := range model.Automaton.Symbols() {
		step := witnesses[sym]
		ip, _ := tr.Value(step, "ip")
		op, _ := tr.Value(step, "op")
		opn, _ := tr.Value(step+1, "op")
		fmt.Printf("  step %5d  (ip=%s, op=%s) -> op'=%s   satisfies  %s\n", step, ip, op, opn, sym)
	}

	// Candidate state invariants (the paper's invariant-synthesis
	// prospect): observed variable ranges per model state.
	invs, err := model.StateInvariants(tr, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidate state invariants:")
	for _, inv := range invs {
		fmt.Printf("  q%d: %s\n", inv.State+1, inv.Expr)
	}
}
