// Quickstart: learn a concise automaton from a plain event trace with
// the public API, print it, and render Graphviz DOT.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// An execution trace of a little file-access protocol, as a
	// sequence of events. Real traces would come from logging or
	// instrumentation; see trace.ReadEvents / trace.ReadCSV /
	// trace.ParseFtrace for the supported on-disk formats.
	var events []string
	for i := 0; i < 8; i++ {
		events = append(events, "open", "read", "read", "write", "close")
	}

	model, err := repro.LearnEvents(events, repro.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learned a %d-state model from %d events\n\n", model.States, len(events))
	fmt.Print(model.Automaton.String())

	fmt.Println("\nGraphviz (pipe into `dot -Tsvg`):")
	fmt.Print(model.Automaton.DOT("quickstart"))
}
