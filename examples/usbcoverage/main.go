// USB coverage: learn the xHCI slot state machine from a QEMU-style
// virtual-platform trace and compare it against the datasheet command
// set — the paper's Fig 1 benchmark and its observation that learned
// models double as functional-coverage reports (commands the
// application load never exercised are missing from the model).
//
// Run with:
//
//	go run ./examples/usbcoverage
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/systems/usbxhci"
)

// datasheet is the full slot command set of the xHCI specification.
var datasheet = []string{
	"CR_ENABLE_SLOT", "CR_DISABLE_SLOT", "CR_ADDR_DEV_BSR0",
	"CR_ADDR_DEV_BSR1", "CR_CONFIG_END", "CR_STOP_END", "CR_RESET_DEVICE",
}

func main() {
	// The application load: attach, I/O, reset, detach cycles on a
	// virtual USB storage device.
	tr, err := usbxhci.DefaultSlotWorkload().Run()
	if err != nil {
		log.Fatal(err)
	}

	model, err := repro.Learn(tr, repro.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d-state slot model from %d commands (datasheet figure: 4 states)\n\n",
		model.States, tr.Len())
	fmt.Print(model.Automaton.String())

	// Coverage: which datasheet commands appear on model edges?
	fmt.Println("\ncoverage against the datasheet command set:")
	for _, cmd := range datasheet {
		mark := "MISSING (not exercised by this load)"
		for _, sym := range model.Automaton.Symbols() {
			if strings.Contains(sym, cmd) {
				mark = "covered"
				break
			}
		}
		fmt.Printf("  %-18s %s\n", cmd, mark)
	}
	fmt.Println("\nthe BSR=1 addressing path is a real coverage hole: neither the")
	fmt.Println("QEMU driver stack nor this load ever issues it (paper, Section IV).")
}
